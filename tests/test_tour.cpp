#include "src/ext/tour.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace hipo::ext {
namespace {

using geom::Vec2;

double order_length(Vec2 depot, const std::vector<Vec2>& stops,
                    const std::vector<std::size_t>& order) {
  if (order.empty()) return 0.0;
  double len = geom::distance(depot, stops[order.front()]);
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    len += geom::distance(stops[order[i]], stops[order[i + 1]]);
  }
  return len + geom::distance(stops[order.back()], depot);
}

/// Brute-force optimum for tiny instances.
double brute_force_tsp(Vec2 depot, const std::vector<Vec2>& stops) {
  std::vector<std::size_t> perm(stops.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  double best = std::numeric_limits<double>::infinity();
  do {
    best = std::min(best, order_length(depot, stops, perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(Tour, EmptyStops) {
  const auto t = plan_tour({0, 0}, {});
  EXPECT_TRUE(t.order.empty());
  EXPECT_DOUBLE_EQ(t.length, 0.0);
}

TEST(Tour, SingleStopRoundTrip) {
  const auto t = plan_tour({0, 0}, {{3, 4}});
  ASSERT_EQ(t.order.size(), 1u);
  EXPECT_NEAR(t.length, 10.0, 1e-12);
}

TEST(Tour, VisitsEveryStopOnce) {
  hipo::Rng rng(1);
  std::vector<Vec2> stops;
  for (int i = 0; i < 20; ++i) {
    stops.push_back({rng.uniform(0, 40), rng.uniform(0, 40)});
  }
  const auto t = plan_tour({0, 0}, stops);
  std::set<std::size_t> visited(t.order.begin(), t.order.end());
  EXPECT_EQ(visited.size(), stops.size());
  EXPECT_NEAR(t.length, order_length({0, 0}, stops, t.order), 1e-9);
}

TEST(Tour, TwoOptBeatsNaiveOrderOnCrossing) {
  // Square visited in a deliberately crossing order must be fixed by 2-opt.
  const std::vector<Vec2> stops{{0, 10}, {10, 0}, {10, 10}, {0, 0}};
  const auto t = plan_tour({0, 0}, stops);
  // Optimal loop over a 10×10 square from the corner is 40.
  EXPECT_NEAR(t.length, 40.0, 1e-9);
}

TEST(OptimalTour, MatchesBruteForce) {
  hipo::Rng rng(2);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<Vec2> stops;
    const int n = 1 + static_cast<int>(rng.below(7));
    for (int i = 0; i < n; ++i) {
      stops.push_back({rng.uniform(-5, 5), rng.uniform(-5, 5)});
    }
    const Vec2 depot{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const auto exact = optimal_tour(depot, stops);
    EXPECT_NEAR(exact.length, brute_force_tsp(depot, stops), 1e-9);
    EXPECT_NEAR(exact.length, order_length(depot, stops, exact.order), 1e-9);
  }
}

TEST(OptimalTour, RejectsOversize) {
  std::vector<Vec2> stops(17, Vec2{0, 0});
  EXPECT_THROW(optimal_tour({0, 0}, stops), hipo::ConfigError);
}

TEST(PlanTour, WithinFactorOfOptimal) {
  hipo::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Vec2> stops;
    for (int i = 0; i < 10; ++i) {
      stops.push_back({rng.uniform(0, 20), rng.uniform(0, 20)});
    }
    const auto heur = plan_tour({0, 0}, stops);
    const auto exact = optimal_tour({0, 0}, stops);
    EXPECT_GE(heur.length, exact.length - 1e-9);
    EXPECT_LE(heur.length, 1.25 * exact.length)  // 2-opt is near-optimal here
        << "trial " << trial;
  }
}

TEST(MultiTour, RequiresDepot) {
  EXPECT_THROW(plan_multi_tour({}, {{1, 1}}), hipo::ConfigError);
}

TEST(MultiTour, AssignsToNearestDepot) {
  const std::vector<Vec2> depots{{0, 0}, {100, 0}};
  const std::vector<Vec2> stops{{1, 1}, {99, 1}, {2, 0}, {98, 0}};
  const auto mt = plan_multi_tour(depots, stops);
  EXPECT_EQ(mt.depot_of[0], 0u);
  EXPECT_EQ(mt.depot_of[1], 1u);
  EXPECT_EQ(mt.depot_of[2], 0u);
  EXPECT_EQ(mt.depot_of[3], 1u);
  EXPECT_NEAR(mt.total_length, mt.tours[0].length + mt.tours[1].length,
              1e-12);
  EXPECT_GE(mt.max_length, mt.total_length / 2.0 - 1e-9);
}

TEST(MultiTour, MoreDepotsNeverWorseTotal) {
  hipo::Rng rng(4);
  std::vector<Vec2> stops;
  for (int i = 0; i < 16; ++i) {
    stops.push_back({rng.uniform(0, 40), rng.uniform(0, 40)});
  }
  const auto one = plan_multi_tour({{0, 0}}, stops);
  const auto two = plan_multi_tour({{0, 0}, {40, 40}}, stops);
  // The bottleneck (fleet makespan) cannot get worse with a second depot
  // under nearest-depot assignment of this stop set.
  EXPECT_LE(two.max_length, one.max_length + 1e-9);
}

TEST(DeploymentRoute, UsesPlacementPositions) {
  model::Placement placement{
      {{5, 0}, 0.0, 0},
      {{10, 0}, 0.0, 0},
  };
  const auto t = plan_deployment_route({0, 0}, placement);
  EXPECT_NEAR(t.length, 20.0, 1e-12);  // out and back along the x-axis
}


TEST(Tour, DuplicateStopsVisitEachIndexOnce) {
  // Coincident stops (two chargers sharing a position after a degenerate
  // placement) must still each appear exactly once, at zero marginal cost.
  const std::vector<Vec2> stops = {{3, 4}, {3, 4}, {3, 4}};
  const auto t = plan_tour({0, 0}, stops);
  std::set<std::size_t> visited(t.order.begin(), t.order.end());
  EXPECT_EQ(visited.size(), 3u);
  EXPECT_NEAR(t.length, 10.0, 1e-12);

  const auto opt = optimal_tour({0, 0}, stops);
  EXPECT_EQ(opt.order.size(), 3u);
  EXPECT_NEAR(opt.length, 10.0, 1e-12);
}

TEST(OptimalTour, SingleAndEmpty) {
  EXPECT_DOUBLE_EQ(optimal_tour({1, 1}, {}).length, 0.0);
  const auto one = optimal_tour({0, 0}, {{0, 7}});
  ASSERT_EQ(one.order.size(), 1u);
  EXPECT_NEAR(one.length, 14.0, 1e-12);
}

}  // namespace
}  // namespace hipo::ext
