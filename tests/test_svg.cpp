#include "src/viz/svg.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "src/core/solver.hpp"
#include "src/util/error.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::viz {
namespace {

TEST(Svg, WellFormedDocument) {
  const auto s = test::blocked_scenario();
  const std::string svg = render_svg(s);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("xmlns"), std::string::npos);
}

TEST(Svg, ContainsObstaclesAndDevices) {
  const auto s = test::blocked_scenario();  // 1 device, 1 obstacle
  const std::string svg = render_svg(s);
  // One polygon for the obstacle.
  EXPECT_NE(svg.find("<polygon"), std::string::npos);
  // Device dot.
  EXPECT_NE(svg.find("#3c6ec8"), std::string::npos);
}

TEST(Svg, PlacementAddsChargerMarks) {
  const auto s = test::simple_scenario();
  const model::Placement placement{{{13.0, 10.0}, geom::kPi, 0}};
  const std::string without = render_svg(s);
  const std::string with = render_svg(s, placement);
  EXPECT_GT(with.size(), without.size());
  EXPECT_NE(with.find("#e07b39"), std::string::npos);  // charger color
  EXPECT_NE(with.find("<path"), std::string::npos);    // sector-ring wedge
}

TEST(Svg, FullCircleReceiverRendersCircles) {
  // simple_scenario devices are omnidirectional: receiving areas render as
  // concentric circles rather than wedge paths.
  const auto s = test::simple_scenario();
  const std::string svg = render_svg(s);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
}

TEST(Svg, OptionsDisableAreas) {
  const auto s = test::simple_scenario();
  const model::Placement placement{{{13.0, 10.0}, geom::kPi, 0}};
  SvgOptions opt;
  opt.draw_receiving_areas = false;
  opt.draw_charging_areas = false;
  const std::string lean = render_svg(s, placement, opt);
  const std::string full = render_svg(s, placement);
  EXPECT_LT(lean.size(), full.size());
}

TEST(Svg, InvalidScaleThrows) {
  const auto s = test::simple_scenario();
  SvgOptions opt;
  opt.scale = 0.0;
  EXPECT_THROW(render_svg(s, {}, opt), hipo::ConfigError);
}

TEST(Svg, WriteFile) {
  const auto s = test::simple_scenario();
  const std::string path = testing::TempDir() + "hipo_svg_test.svg";
  write_svg_file(path, s, core::solve(s).placement);
  // Re-read to confirm it landed.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_EQ(first_line.rfind("<svg", 0), 0u);
}

TEST(Svg, WriteFileBadPathThrows) {
  const auto s = test::simple_scenario();
  EXPECT_THROW(write_svg_file("/nonexistent/x.svg", s), hipo::ConfigError);
}

TEST(Svg, CoordinatesStayInViewBox) {
  // All emitted circle centers must lie within the document bounds.
  const auto s = test::small_paper_scenario(60, 1, 1);
  SvgOptions opt;
  const std::string svg = render_svg(s, {}, opt);
  const double width = s.region().extent().x * opt.scale + 2 * opt.margin;
  const double height = s.region().extent().y * opt.scale + 2 * opt.margin;
  std::size_t pos = 0;
  while ((pos = svg.find("cx=\"", pos)) != std::string::npos) {
    pos += 4;
    const double cx = std::stod(svg.substr(pos));
    EXPECT_GE(cx, -1.0);
    EXPECT_LE(cx, width + 1.0);
  }
  pos = 0;
  while ((pos = svg.find("cy=\"", pos)) != std::string::npos) {
    pos += 4;
    const double cy = std::stod(svg.substr(pos));
    EXPECT_GE(cy, -1.0);
    EXPECT_LE(cy, height + 1.0);
  }
}

}  // namespace
}  // namespace hipo::viz
