// Observability must be write-only: solver output is bit-identical with
// metrics + tracing enabled or disabled, for any worker count. This is the
// contract that lets instrumentation stay compiled into the hot path.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>

#include "src/core/solver.hpp"
#include "src/model/scenario_gen.hpp"
#include "src/obs/obs.hpp"
#include "src/parallel/thread_pool.hpp"
#include "src/util/rng.hpp"

namespace hipo {
namespace {

model::Scenario make_scenario() {
  model::GenOptions opt;
  opt.num_obstacles = 5;
  Rng rng(19);
  return model::make_paper_scenario(opt, rng);
}

core::SolveResult run(const model::Scenario& scenario, bool observability,
                      std::optional<std::size_t> threads) {
  obs::reset_metrics();
  obs::reset_trace();
  obs::set_metrics_enabled(observability);
  obs::set_trace_enabled(observability);
  core::SolveOptions options;
  std::optional<parallel::ThreadPool> pool;
  if (threads) {
    pool.emplace(*threads);
    options.pool = &*pool;
  }
  const auto result = core::solve(scenario, options);
  obs::set_metrics_enabled(false);
  obs::set_trace_enabled(false);
  return result;
}

void expect_bit_identical(const core::SolveResult& a,
                          const core::SolveResult& b) {
  // Exact comparisons throughout: the claim is bit-identity, not closeness.
  ASSERT_EQ(a.placement.size(), b.placement.size());
  for (std::size_t i = 0; i < a.placement.size(); ++i) {
    EXPECT_EQ(a.placement[i].pos.x, b.placement[i].pos.x);
    EXPECT_EQ(a.placement[i].pos.y, b.placement[i].pos.y);
    EXPECT_EQ(a.placement[i].orientation, b.placement[i].orientation);
    EXPECT_EQ(a.placement[i].type, b.placement[i].type);
  }
  EXPECT_EQ(a.utility, b.utility);
  EXPECT_EQ(a.approx_utility, b.approx_utility);
  EXPECT_EQ(a.greedy.selected, b.greedy.selected);
}

TEST(ObsDeterminism, OutputIdenticalWithObservabilityOnOrOff) {
  const auto scenario = make_scenario();
  const auto baseline = run(scenario, /*observability=*/false, std::nullopt);
  ASSERT_FALSE(baseline.placement.empty());

  for (const std::optional<std::size_t> threads :
       {std::optional<std::size_t>{}, std::optional<std::size_t>{1},
        std::optional<std::size_t>{3}}) {
    SCOPED_TRACE(threads ? static_cast<int>(*threads) : -1);
    expect_bit_identical(baseline, run(scenario, false, threads));
    expect_bit_identical(baseline, run(scenario, true, threads));
  }
}

TEST(ObsDeterminism, ObservedRunProducesTelemetry) {
  const auto scenario = make_scenario();
  const auto result = run(scenario, /*observability=*/true,
                          std::optional<std::size_t>{3});
  ASSERT_FALSE(result.placement.empty());
  const auto snapshot = obs::metrics_snapshot();
  std::uint64_t los_total = 0, seg_queries = 0;
  double solve_seconds = -1.0;
  for (const auto& c : snapshot.counters) {
    if (c.name == "los_cache.hits" || c.name == "los_cache.misses") {
      los_total += c.value;
    }
    if (c.name == "segment_index.segment_queries") seg_queries = c.value;
  }
  for (const auto& a : snapshot.accums) {
    if (a.name == "phase.solve.seconds") solve_seconds = a.sum;
  }
  EXPECT_GT(los_total, 0u);
  EXPECT_GT(seg_queries, 0u);
  EXPECT_GT(solve_seconds, 0.0);

  std::ostringstream trace;
  obs::write_trace_json(trace);
  EXPECT_NE(trace.str().find("\"solve\""), std::string::npos);
  EXPECT_NE(trace.str().find("\"extract.device\""), std::string::npos);
  obs::reset_trace();
}

}  // namespace
}  // namespace hipo
