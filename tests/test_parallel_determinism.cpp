// The determinism guarantee of the parallel solve path: solver output is
// byte-identical for a 1-worker pool, a many-worker pool, and no pool at
// all, on seeded scenarios. Backed by the fixed-chunk reductions in
// `hipo::parallel` (chunk boundaries and fold order never depend on the
// worker count).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "src/core/solver.hpp"
#include "src/model/los_cache.hpp"
#include "src/opt/greedy.hpp"
#include "src/parallel/thread_pool.hpp"
#include "src/pdcs/extract.hpp"
#include "tests/test_helpers.hpp"

namespace hipo {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Strategy-by-strategy bitwise comparison (positions, orientations, types).
void expect_placement_bits_equal(const model::Placement& a,
                                 const model::Placement& b,
                                 const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(bits(a[i].pos.x), bits(b[i].pos.x)) << label << " slot " << i;
    EXPECT_EQ(bits(a[i].pos.y), bits(b[i].pos.y)) << label << " slot " << i;
    EXPECT_EQ(bits(a[i].orientation), bits(b[i].orientation))
        << label << " slot " << i;
    EXPECT_EQ(a[i].type, b[i].type) << label << " slot " << i;
  }
}

TEST(ParallelDeterminism, SolveByteIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    const auto scenario = test::small_paper_scenario(seed, 2, 2);

    core::SolveOptions sequential;  // no pool at all
    const auto reference = core::solve(scenario, sequential);

    for (const std::size_t workers : {1u, 2u, 8u}) {
      parallel::ThreadPool pool(workers);
      core::SolveOptions options;
      options.pool = &pool;
      const auto result = core::solve(scenario, options);

      EXPECT_EQ(result.extraction.candidates.size(),
                reference.extraction.candidates.size())
          << "seed " << seed << " workers " << workers;
      EXPECT_EQ(result.greedy.selected, reference.greedy.selected)
          << "seed " << seed << " workers " << workers;
      expect_placement_bits_equal(result.placement, reference.placement,
                                  "placement");
      EXPECT_EQ(bits(result.utility), bits(reference.utility))
          << "seed " << seed << " workers " << workers;
      EXPECT_EQ(bits(result.approx_utility), bits(reference.approx_utility))
          << "seed " << seed << " workers " << workers;
    }
  }
}

TEST(ParallelDeterminism, EveryGreedyModeThreadCountInvariant) {
  const auto scenario = test::small_paper_scenario(5, 2, 2);
  const auto extraction = pdcs::extract_all(scenario);

  for (const auto mode : {opt::GreedyMode::kPerType, opt::GreedyMode::kGlobal,
                          opt::GreedyMode::kLazyGlobal}) {
    const auto reference =
        opt::select_strategies(scenario, extraction.candidates, mode);
    for (const std::size_t workers : {1u, 3u, 8u}) {
      parallel::ThreadPool pool(workers);
      const auto result =
          opt::select_strategies(scenario, extraction.candidates, mode,
                                 opt::ObjectiveKind::kUtility, &pool);
      EXPECT_EQ(result.selected, reference.selected)
          << "mode " << static_cast<int>(mode) << " workers " << workers;
      EXPECT_EQ(bits(result.exact_utility), bits(reference.exact_utility))
          << "mode " << static_cast<int>(mode) << " workers " << workers;
      EXPECT_EQ(bits(result.approx_utility), bits(reference.approx_utility))
          << "mode " << static_cast<int>(mode) << " workers " << workers;
    }
  }
}

TEST(ParallelDeterminism, PlacementUtilityMatchesSequentialBitwise) {
  const auto scenario = test::small_paper_scenario(11, 3, 2);
  const auto extraction = pdcs::extract_all(scenario);
  const auto greedy =
      opt::select_strategies(scenario, extraction.candidates,
                             opt::GreedyMode::kLazyGlobal);
  const double sequential = scenario.placement_utility(greedy.placement);
  for (const std::size_t workers : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(workers);
    model::LosCache cache(scenario);
    EXPECT_EQ(bits(cache.placement_utility(greedy.placement, &pool)),
              bits(sequential))
        << "workers " << workers;
  }
}

TEST(ParallelDeterminism, ExtractionIdenticalAcrossThreadCounts) {
  const auto scenario = test::small_paper_scenario(3, 2, 1);
  const auto reference = pdcs::extract_all(scenario);
  for (const std::size_t workers : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(workers);
    const auto result = pdcs::extract_all(scenario, {}, &pool);
    ASSERT_EQ(result.candidates.size(), reference.candidates.size());
    EXPECT_EQ(result.per_type_counts, reference.per_type_counts);
    for (std::size_t i = 0; i < result.candidates.size(); ++i) {
      const auto& a = result.candidates[i];
      const auto& b = reference.candidates[i];
      EXPECT_EQ(bits(a.strategy.pos.x), bits(b.strategy.pos.x)) << i;
      EXPECT_EQ(bits(a.strategy.pos.y), bits(b.strategy.pos.y)) << i;
      EXPECT_EQ(bits(a.strategy.orientation), bits(b.strategy.orientation))
          << i;
      EXPECT_EQ(a.strategy.type, b.strategy.type) << i;
      EXPECT_EQ(a.covered, b.covered) << i;
    }
  }
}

}  // namespace
}  // namespace hipo
