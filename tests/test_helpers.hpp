// Shared fixtures for the HIPO test suite: small hand-built scenarios with
// known geometry, plus random-scenario helpers.
#pragma once

#include "src/model/scenario.hpp"
#include "src/model/scenario_gen.hpp"
#include "src/util/rng.hpp"

namespace hipo::test {

/// One charger type (α=π/2, d∈[1,5]), one omni-ish device type (α=2π),
/// devices/obstacles supplied by the caller. Region [0,20]².
inline model::Scenario::Config simple_config() {
  model::Scenario::Config cfg;
  cfg.charger_types = {{geom::kPi / 2.0, 1.0, 5.0}};
  cfg.device_types = {{geom::kTwoPi}};
  cfg.pair_params = {{100.0, 40.0}};
  cfg.charger_counts = {2};
  cfg.region.lo = {0.0, 0.0};
  cfg.region.hi = {20.0, 20.0};
  cfg.eps1 = 0.3;
  return cfg;
}

inline model::Device device_at(double x, double y, double orientation = 0.0,
                               std::size_t type = 0, double p_th = 0.05) {
  model::Device d;
  d.pos = {x, y};
  d.orientation = orientation;
  d.type = type;
  d.p_th = p_th;
  return d;
}

/// Obstacle-free scenario with a handful of omni devices around the center.
inline model::Scenario simple_scenario() {
  auto cfg = simple_config();
  cfg.devices = {device_at(10, 10), device_at(12, 10), device_at(10, 13)};
  return model::Scenario(std::move(cfg));
}

/// Scenario with a square obstacle between a device and the +x half-plane.
inline model::Scenario blocked_scenario() {
  auto cfg = simple_config();
  cfg.devices = {device_at(10, 10)};
  cfg.obstacles = {geom::make_rect({11.0, 9.5}, {12.0, 10.5})};
  return model::Scenario(std::move(cfg));
}

/// Small random paper-style scenario (fast to solve in tests).
inline model::Scenario small_paper_scenario(std::uint64_t seed,
                                            int device_multiplier = 1,
                                            int charger_multiplier = 1) {
  model::GenOptions opt;
  opt.device_multiplier = device_multiplier;
  opt.charger_multiplier = charger_multiplier;
  Rng rng(seed);
  return model::make_paper_scenario(opt, rng);
}

}  // namespace hipo::test
