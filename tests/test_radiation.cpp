#include "src/ext/radiation.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/opt/greedy.hpp"
#include "src/pdcs/extract.hpp"
#include "src/util/error.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::ext {
namespace {

TEST(RadiationModel, FromScenarioPicksStrongestCoupling) {
  const auto s = test::small_paper_scenario(601, 1, 1);
  const auto m = RadiationModel::from_scenario(s);
  ASSERT_EQ(m.emission.size(), s.num_charger_types());
  for (std::size_t q = 0; q < s.num_charger_types(); ++q) {
    double strongest = 0.0;
    for (std::size_t t = 0; t < s.num_device_types(); ++t) {
      strongest = std::max(strongest, s.pair_params(q, t).a);
    }
    EXPECT_DOUBLE_EQ(m.emission[q].a, strongest);
  }
}

TEST(RadiationModel, GatesLikeChargerSide) {
  const auto s = test::simple_scenario();
  const auto m = RadiationModel::from_scenario(s);
  const model::Strategy charger{{10.0, 10.0}, 0.0, 0};  // faces east
  // In front, in range: positive radiation.
  EXPECT_GT(m.radiation_from(s, charger, {13.0, 10.0}), 0.0);
  // Behind: zero.
  EXPECT_DOUBLE_EQ(m.radiation_from(s, charger, {7.0, 10.0}), 0.0);
  // Too close / too far: zero.
  EXPECT_DOUBLE_EQ(m.radiation_from(s, charger, {10.5, 10.0}), 0.0);
  EXPECT_DOUBLE_EQ(m.radiation_from(s, charger, {16.0, 10.0}), 0.0);
}

TEST(RadiationModel, BlockedByObstacle) {
  const auto s = test::blocked_scenario();  // rect (11,9.5)-(12,10.5)
  const auto m = RadiationModel::from_scenario(s);
  const model::Strategy charger{{9.0, 10.0}, 0.0, 0};
  EXPECT_DOUBLE_EQ(m.radiation_from(s, charger, {13.0, 10.0}), 0.0);
  EXPECT_GT(m.radiation_from(s, charger, {10.5, 10.0}), 0.0);
}

TEST(RadiationProbes, ExcludeObstaclesIncludeDevices) {
  const auto s = test::blocked_scenario();
  RadiationModel m = RadiationModel::from_scenario(s);
  m.grid_nx = 40;
  m.grid_ny = 40;
  const auto probes = radiation_probes(s, m);
  EXPECT_GT(probes.size(), 100u);
  for (const auto& p : probes) {
    for (const auto& h : s.obstacles()) {
      // Device positions may sit on a boundary, never interior.
      EXPECT_FALSE(h.contains_interior(p));
    }
  }
  // The device position itself is a probe.
  bool has_device = false;
  for (const auto& p : probes) {
    if (geom::approx_equal(p, s.device(0).pos)) has_device = true;
  }
  EXPECT_TRUE(has_device);
}

TEST(MaxRadiation, EmptyPlacementZero) {
  const auto s = test::simple_scenario();
  const auto m = RadiationModel::from_scenario(s);
  EXPECT_DOUBLE_EQ(max_radiation(s, {}, m), 0.0);
}

TEST(MaxRadiation, AdditiveAcrossChargers) {
  const auto s = test::simple_scenario();
  const auto m = RadiationModel::from_scenario(s);
  const model::Placement one{{{13.0, 10.0}, geom::kPi, 0}};
  const model::Placement two{{{13.0, 10.0}, geom::kPi, 0},
                             {{7.0, 10.0}, 0.0, 0}};
  // Both chargers irradiate the overlap around (10, 10): the peak of the
  // pair is at least the single charger's peak.
  EXPECT_GE(max_radiation(s, two, m), max_radiation(s, one, m) - 1e-12);
}

class SafeSelectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = std::make_unique<model::Scenario>(
        test::small_paper_scenario(602, 1, 1));
    extraction_ = pdcs::extract_all(*scenario_);
    ASSERT_FALSE(extraction_.candidates.empty());
    model_ = RadiationModel::from_scenario(*scenario_);
    model_.grid_nx = 16;
    model_.grid_ny = 16;
  }

  std::unique_ptr<model::Scenario> scenario_;
  pdcs::ExtractionResult extraction_;
  RadiationModel model_;
};

TEST_F(SafeSelectTest, ZeroThresholdSelectsNothing) {
  const auto r = select_radiation_safe(*scenario_, extraction_.candidates,
                                       model_, 0.0);
  EXPECT_TRUE(r.selected.empty());
  EXPECT_DOUBLE_EQ(r.peak_radiation, 0.0);
}

TEST_F(SafeSelectTest, CapRespectedOnProbes) {
  for (double threshold : {0.02, 0.05, 0.1}) {
    const auto r = select_radiation_safe(*scenario_, extraction_.candidates,
                                         model_, threshold);
    EXPECT_LE(r.peak_radiation, threshold + 1e-9) << "Rt=" << threshold;
    scenario_->validate_placement(r.placement);
  }
}

TEST_F(SafeSelectTest, UtilityMonotoneInThreshold) {
  double prev = -1.0;
  for (double threshold : {0.01, 0.03, 0.06, 0.2, 1e9}) {
    const auto r = select_radiation_safe(*scenario_, extraction_.candidates,
                                         model_, threshold);
    EXPECT_GE(r.approx_utility, prev - 1e-9);
    prev = r.approx_utility;
  }
}

TEST_F(SafeSelectTest, UnlimitedThresholdMatchesPlainGreedy) {
  const auto safe = select_radiation_safe(*scenario_, extraction_.candidates,
                                          model_, 1e12);
  const auto plain = opt::select_strategies(
      *scenario_, extraction_.candidates, opt::GreedyMode::kGlobal);
  EXPECT_NEAR(safe.approx_utility, plain.approx_utility, 1e-9);
}

TEST_F(SafeSelectTest, NegativeThresholdThrows) {
  EXPECT_THROW(select_radiation_safe(*scenario_, extraction_.candidates,
                                     model_, -0.1),
               hipo::ConfigError);
}

}  // namespace
}  // namespace hipo::ext
