#include "src/ext/coverage_analysis.hpp"

#include <gtest/gtest.h>

#include "src/core/solver.hpp"
#include "src/util/error.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::ext {
namespace {

TEST(CoverageAnalysis, OpenFieldDeviceIsCoverable) {
  const auto s = test::simple_scenario();
  const auto cov = analyze_device(s, 0);
  EXPECT_TRUE(cov.coverable);
  EXPECT_TRUE(cov.by_type[0]);
  EXPECT_GT(cov.best_single_power, 0.0);
  EXPECT_GT(cov.single_charger_utility, 0.0);
}

TEST(CoverageAnalysis, OutOfRangeIndexThrows) {
  const auto s = test::simple_scenario();
  EXPECT_THROW(analyze_device(s, 99), hipo::ConfigError);
}

TEST(CoverageAnalysis, ShieldedDeviceDetected) {
  // The walled-in device from the solver test: provably unchargeable.
  auto cfg = test::simple_config();
  cfg.devices = {test::device_at(10, 10), test::device_at(3, 3)};
  cfg.obstacles = {
      geom::make_rect({8.5, 8.5}, {11.5, 9.5}),
      geom::make_rect({8.5, 10.5}, {11.5, 11.5}),
      geom::make_rect({8.5, 9.4}, {9.5, 10.6}),
      geom::make_rect({10.5, 9.4}, {11.5, 10.6}),
  };
  const model::Scenario s(std::move(cfg));
  const auto report = analyze_coverage(s);
  EXPECT_FALSE(report.devices[0].coverable);
  EXPECT_TRUE(report.devices[1].coverable);
  EXPECT_EQ(report.uncoverable, 1u);
  EXPECT_NEAR(report.utility_upper_bound, 0.5, 1e-12);
}

TEST(CoverageAnalysis, UpperBoundDominatesAnySolve) {
  for (std::uint64_t seed : {901, 902, 903}) {
    const auto s = test::small_paper_scenario(seed, 2, 2);
    const auto report = analyze_coverage(s);
    const auto result = core::solve(s);
    EXPECT_LE(result.utility, report.utility_upper_bound + 1e-9)
        << "seed " << seed;
  }
}

TEST(CoverageAnalysis, BestSinglePowerMatchesNearestRing) {
  // Open field, omni device: the best single-charger power is the nearest
  // ring's power.
  const auto s = test::simple_scenario();
  const auto cov = analyze_device(s, 0);
  const auto& lad = s.ladder(0, 0);
  EXPECT_NEAR(cov.best_single_power, lad.ring_power(0), 1e-12);
}

TEST(CoverageAnalysis, WeightsShapeTheUpperBound) {
  auto cfg = test::simple_config();
  auto reachable = test::device_at(10, 10);
  reachable.weight = 3.0;
  auto walled = test::device_at(3, 3);
  walled.weight = 1.0;
  cfg.devices = {reachable, walled};
  cfg.obstacles = {
      geom::make_rect({1.5, 1.5}, {4.5, 2.5}),
      geom::make_rect({1.5, 3.5}, {4.5, 4.5}),
      geom::make_rect({1.5, 2.4}, {2.5, 3.6}),
      geom::make_rect({3.5, 2.4}, {4.5, 3.6}),
  };
  const model::Scenario s(std::move(cfg));
  const auto report = analyze_coverage(s);
  ASSERT_EQ(report.uncoverable, 1u);
  EXPECT_NEAR(report.utility_upper_bound, 3.0 / 4.0, 1e-12);
}

TEST(CoverageAnalysis, PerTypeDiscrimination) {
  // A device reachable only from a thin corridor: the long-minimum-range
  // type cannot reach it, the short-range type can.
  auto cfg = test::simple_config();
  cfg.charger_types = {
      {geom::kPi / 2.0, 6.0, 9.0},  // far-only type
      {geom::kPi / 2.0, 1.0, 3.0},  // near-only type
  };
  cfg.pair_params = {{100.0, 40.0}, {100.0, 40.0}};
  cfg.charger_counts = {1, 1};
  cfg.devices = {test::device_at(10, 10)};
  // Closed ring of walls whose interior corner distance (~4.95 m) is below
  // the far type's 6 m minimum: positions 6-9 m out lose line of sight,
  // positions 1-3 m (inside the ring) keep it.
  cfg.obstacles = {
      geom::make_rect({6.0, 6.0}, {14.0, 6.5}),
      geom::make_rect({6.0, 13.5}, {14.0, 14.0}),
      geom::make_rect({6.0, 6.4}, {6.5, 13.6}),
      geom::make_rect({13.5, 6.4}, {14.0, 13.6}),
  };
  const model::Scenario s(std::move(cfg));
  const auto cov = analyze_device(s, 0);
  EXPECT_FALSE(cov.by_type[0]);  // far ring fully blocked
  EXPECT_TRUE(cov.by_type[1]);   // near ring inside the walls
  EXPECT_TRUE(cov.coverable);
}

}  // namespace
}  // namespace hipo::ext
