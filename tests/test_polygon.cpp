#include "src/geometry/polygon.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/geometry/angles.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace hipo::geom {
namespace {

Polygon unit_square() { return make_rect({0, 0}, {1, 1}); }

TEST(Polygon, RejectsDegenerate) {
  EXPECT_THROW(Polygon({{0, 0}, {1, 0}}), hipo::ConfigError);
  EXPECT_THROW(Polygon({{0, 0}, {1, 0}, {2, 0}}), hipo::ConfigError);
}

TEST(Polygon, NormalizesWindingToCcw) {
  const Polygon cw({{0, 0}, {0, 1}, {1, 1}, {1, 0}});
  EXPECT_GT(cw.area(), 0.0);
}

TEST(Polygon, AreaAndCentroid) {
  const auto sq = unit_square();
  EXPECT_NEAR(sq.area(), 1.0, 1e-12);
  EXPECT_NEAR(sq.centroid().x, 0.5, 1e-12);
  EXPECT_NEAR(sq.centroid().y, 0.5, 1e-12);
}

TEST(Polygon, RegularPolygonArea) {
  // Area of regular n-gon with circumradius r: (1/2) n r² sin(2π/n).
  const auto hex = make_regular_polygon({0, 0}, 2.0, 6);
  EXPECT_NEAR(hex.area(), 0.5 * 6 * 4.0 * std::sin(kTwoPi / 6), 1e-9);
  EXPECT_TRUE(hex.is_convex());
}

TEST(Polygon, ContainsInteriorBoundaryOutside) {
  const auto sq = unit_square();
  EXPECT_TRUE(sq.contains_interior({0.5, 0.5}));
  EXPECT_FALSE(sq.contains_interior({0.0, 0.5}));  // boundary
  EXPECT_FALSE(sq.contains_interior({1.5, 0.5}));
  EXPECT_TRUE(sq.contains({0.0, 0.5}));  // boundary inclusive
  EXPECT_TRUE(sq.on_boundary({1.0, 1.0}));
  EXPECT_FALSE(sq.on_boundary({0.5, 0.5}));
}

TEST(Polygon, NonConvexContainment) {
  // L-shape.
  const Polygon l({{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
  EXPECT_FALSE(l.is_convex());
  EXPECT_TRUE(l.contains_interior({0.5, 1.5}));
  EXPECT_TRUE(l.contains_interior({1.5, 0.5}));
  EXPECT_FALSE(l.contains_interior({1.5, 1.5}));  // notch
}

TEST(Polygon, BlocksSegmentCrossing) {
  const auto sq = unit_square();
  EXPECT_TRUE(sq.blocks_segment({{-1, 0.5}, {2, 0.5}}));
}

TEST(Polygon, DoesNotBlockDisjointSegment) {
  const auto sq = unit_square();
  EXPECT_FALSE(sq.blocks_segment({{-1, 2}, {2, 2}}));
}

TEST(Polygon, DoesNotBlockGrazingVertex) {
  const auto sq = unit_square();
  // Diagonal line through corner (1,1) that never enters the interior.
  EXPECT_FALSE(sq.blocks_segment({{0.0, 2.0}, {2.0, 0.0}}));
}

TEST(Polygon, DoesNotBlockSegmentAlongEdge) {
  const auto sq = unit_square();
  EXPECT_FALSE(sq.blocks_segment({{-1, 0}, {2, 0}}));
}

TEST(Polygon, BlocksSegmentEndingInside) {
  const auto sq = unit_square();
  EXPECT_TRUE(sq.blocks_segment({{-1, 0.5}, {0.5, 0.5}}));
}

TEST(Polygon, BlocksSegmentFullyInside) {
  const auto sq = unit_square();
  EXPECT_TRUE(sq.blocks_segment({{0.2, 0.2}, {0.8, 0.8}}));
}

TEST(Polygon, NonConvexNotchDoesNotBlock) {
  const Polygon l({{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
  // Segment passing through the notch area only.
  EXPECT_FALSE(l.blocks_segment({{1.2, 1.2}, {1.8, 1.8}}));
  EXPECT_TRUE(l.blocks_segment({{-0.5, 0.5}, {2.5, 0.5}}));
}

TEST(Polygon, BoundaryIntersections) {
  const auto sq = unit_square();
  const auto pts = sq.boundary_intersections({{-1, 0.5}, {2, 0.5}});
  EXPECT_EQ(pts.size(), 2u);
}

TEST(Polygon, EdgeIndexing) {
  const auto sq = unit_square();
  EXPECT_EQ(sq.size(), 4u);
  const Segment e = sq.edge(3);
  // Last edge closes the polygon back to the first vertex.
  EXPECT_TRUE(approx_equal(e.b, sq.vertices().front()));
}

TEST(MakeRect, Validates) {
  EXPECT_THROW(make_rect({1, 1}, {0, 0}), hipo::ConfigError);
}

TEST(MakeRegularPolygon, Validates) {
  EXPECT_THROW(make_regular_polygon({0, 0}, 1.0, 2), hipo::ConfigError);
  EXPECT_THROW(make_regular_polygon({0, 0}, -1.0, 5), hipo::ConfigError);
}

TEST(StarConvexPolygon, VerticesWithinRadius) {
  hipo::Rng rng(5);
  std::vector<double> radii, angles;
  for (int i = 0; i < 7; ++i) {
    radii.push_back(rng.uniform());
    angles.push_back(rng.angle());
  }
  const auto poly = make_star_convex_polygon({3, 3}, 2.0, radii, angles);
  EXPECT_EQ(poly.size(), 7u);
  for (const Vec2& v : poly.vertices()) {
    EXPECT_LE(distance(v, {3, 3}), 2.0 + 1e-9);
    EXPECT_GE(distance(v, {3, 3}), 1.0 - 1e-9);
  }
}

// Property: blocks_segment agrees with a dense-sampling interior oracle.
class BlockOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(BlockOracleTest, AgreesWithSamplingOracle) {
  hipo::Rng rng(static_cast<std::uint64_t>(GetParam()) * 41 + 11);
  const auto poly = make_regular_polygon(
      {rng.uniform(-1, 1), rng.uniform(-1, 1)}, rng.uniform(0.5, 1.5),
      3 + static_cast<int>(rng.below(6)), rng.angle());
  for (int i = 0; i < 120; ++i) {
    const Segment seg({rng.uniform(-4, 4), rng.uniform(-4, 4)},
                      {rng.uniform(-4, 4), rng.uniform(-4, 4)});
    bool oracle = false;
    double oracle_margin = 0.0;
    for (int k = 1; k < 400; ++k) {
      const Vec2 p = seg.point_at(k / 400.0);
      if (poly.contains_interior(p)) {
        oracle = true;
        // Margin: how deep the witness is (distance to nearest edge).
        double depth = 1e9;
        for (std::size_t e = 0; e < poly.size(); ++e) {
          depth = std::min(depth, point_segment_distance(p, poly.edge(e)));
        }
        oracle_margin = std::max(oracle_margin, depth);
      }
    }
    const bool got = poly.blocks_segment(seg);
    if (oracle && oracle_margin > 1e-3) {
      EXPECT_TRUE(got) << "segment clearly enters interior";
    }
    if (!oracle) {
      // blocks_segment may only report true if some midpoint is interior —
      // verify via its own sub-segment logic by checking it agrees when the
      // segment is far from the polygon.
      double min_d = 1e9;
      for (int k = 0; k <= 10; ++k) {
        const Vec2 p = seg.point_at(k / 10.0);
        for (std::size_t e = 0; e < poly.size(); ++e) {
          min_d = std::min(min_d, point_segment_distance(p, poly.edge(e)));
        }
      }
      if (min_d > 1e-3 && !poly.contains({seg.a.x, seg.a.y})) {
        EXPECT_FALSE(got) << "segment clearly avoids polygon";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, BlockOracleTest, ::testing::Range(0, 10));

TEST(PolygonSimple, ConvexAndConcaveAreSimple) {
  EXPECT_TRUE(unit_square().is_simple());
  const Polygon l_shape({{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
  EXPECT_TRUE(l_shape.is_simple());
  EXPECT_TRUE(make_regular_polygon({0, 0}, 2.0, 7).is_simple());
}

TEST(PolygonSimple, RejectsBowtie) {
  // Asymmetric bowtie (nonzero area, so the constructor accepts it): edges
  // 0 and 2 cross in their interiors.
  const Polygon bowtie({{0, 0}, {3, 1}, {2, 0}, {0, 2}});
  EXPECT_FALSE(bowtie.is_simple());
}

TEST(PolygonSimple, RejectsCollinearSpike) {
  // Edge (2,0)→(1,0) folds back along (0,0)→(2,0): consecutive edges
  // overlap beyond their shared vertex.
  const Polygon spike({{0, 0}, {2, 0}, {1, 0}, {1, 1}});
  EXPECT_FALSE(spike.is_simple());
}

TEST(PolygonSimple, RejectsDuplicateVertex) {
  const Polygon dup({{0, 0}, {1, 0}, {1, 0}, {0, 1}});
  EXPECT_FALSE(dup.is_simple());
}

}  // namespace
}  // namespace hipo::geom
