#include "src/viz/field_export.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/util/error.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::viz {
namespace {

model::Placement east_charger() {
  // Charger at (13,10) facing west covers the area around (10,10).
  return {{{13.0, 10.0}, geom::kPi, 0}};
}

TEST(FieldGrid, DimensionsAndIndexing) {
  const auto s = test::simple_scenario();
  const auto grid = sample_power_field(s, east_charger(), 0, 8, 6);
  EXPECT_EQ(grid.nx, 8u);
  EXPECT_EQ(grid.ny, 6u);
  EXPECT_EQ(grid.values.size(), 48u);
  const auto c = grid.cell_center(0, 0);
  EXPECT_GT(c.x, s.region().lo.x);
  EXPECT_LT(c.x, s.region().hi.x);
}

TEST(FieldGrid, ValidatesArguments) {
  const auto s = test::simple_scenario();
  EXPECT_THROW(sample_power_field(s, {}, 0, 0, 4), hipo::ConfigError);
  EXPECT_THROW(sample_power_field(s, {}, 9, 4, 4), hipo::ConfigError);
}

TEST(FieldGrid, PowerConcentratedInChargingSector) {
  const auto s = test::simple_scenario();
  const auto grid = sample_power_field(s, east_charger(), 0, 40, 40);
  // A point ~3 m west of the charger (inside the sector) is powered.
  double powered = 0.0, behind = 0.0;
  for (std::size_t iy = 0; iy < grid.ny; ++iy) {
    for (std::size_t ix = 0; ix < grid.nx; ++ix) {
      const auto c = grid.cell_center(ix, iy);
      if (std::abs(c.y - 10.0) < 1.0 && c.x > 9.0 && c.x < 11.5) {
        powered = std::max(powered, grid.at(ix, iy));
      }
      if (std::abs(c.y - 10.0) < 1.0 && c.x > 15.0 && c.x < 17.0) {
        behind = std::max(behind, grid.at(ix, iy));
      }
    }
  }
  EXPECT_GT(powered, 0.0);
  EXPECT_DOUBLE_EQ(behind, 0.0);  // behind the charger: outside its sector
}

TEST(FieldGrid, ObstaclesShadowTheField) {
  const auto s = test::blocked_scenario();  // rect (11,9.5)-(12,10.5)
  // Charger west of the obstacle, facing east.
  const model::Placement placement{{{9.0, 10.0}, 0.0, 0}};
  const auto grid = sample_power_field(s, placement, 0, 80, 80);
  double in_shadow = 0.0;
  double clear = 0.0;
  for (std::size_t iy = 0; iy < grid.ny; ++iy) {
    for (std::size_t ix = 0; ix < grid.nx; ++ix) {
      const auto c = grid.cell_center(ix, iy);
      if (std::abs(c.y - 10.0) < 0.2 && c.x > 12.2 && c.x < 13.5) {
        in_shadow = std::max(in_shadow, grid.at(ix, iy));
      }
      if (std::abs(c.y - 10.0) < 0.2 && c.x > 10.0 && c.x < 10.8) {
        clear = std::max(clear, grid.at(ix, iy));
      }
    }
  }
  EXPECT_DOUBLE_EQ(in_shadow, 0.0);
  EXPECT_GT(clear, 0.0);
}

TEST(FieldGrid, CellsInsideObstacleAreZero) {
  const auto s = test::blocked_scenario();
  const model::Placement placement{{{9.0, 10.0}, 0.0, 0}};
  const auto grid = sample_power_field(s, placement, 0, 80, 80);
  for (std::size_t iy = 0; iy < grid.ny; ++iy) {
    for (std::size_t ix = 0; ix < grid.nx; ++ix) {
      const auto c = grid.cell_center(ix, iy);
      if (s.obstacles()[0].contains_interior(c)) {
        EXPECT_DOUBLE_EQ(grid.at(ix, iy), 0.0);
      }
    }
  }
}

TEST(FieldExport, CsvFormat) {
  const auto s = test::simple_scenario();
  const auto grid = sample_power_field(s, east_charger(), 0, 4, 4);
  const std::string path = testing::TempDir() + "hipo_field.csv";
  write_field_csv(path, grid);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "x,y,value");
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 16);
}

TEST(FieldExport, PgmFormat) {
  const auto s = test::simple_scenario();
  const auto grid = sample_power_field(s, east_charger(), 0, 6, 5);
  const std::string path = testing::TempDir() + "hipo_field.pgm";
  write_field_pgm(path, grid);
  std::ifstream in(path);
  std::string magic;
  std::size_t w, h;
  int maxval;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P2");
  EXPECT_EQ(w, 6u);
  EXPECT_EQ(h, 5u);
  EXPECT_EQ(maxval, 255);
  int count = 0, level, peak = 0;
  while (in >> level) {
    EXPECT_GE(level, 0);
    EXPECT_LE(level, 255);
    peak = std::max(peak, level);
    ++count;
  }
  EXPECT_EQ(count, 30);
  EXPECT_EQ(peak, 255);  // max scaled to full white
}

TEST(FieldExport, BadPathThrows) {
  const auto s = test::simple_scenario();
  const auto grid = sample_power_field(s, {}, 0, 2, 2);
  EXPECT_THROW(write_field_csv("/nonexistent/f.csv", grid),
               hipo::ConfigError);
  EXPECT_THROW(write_field_pgm("/nonexistent/f.pgm", grid),
               hipo::ConfigError);
}

}  // namespace
}  // namespace hipo::viz
