#include "src/spatial/grid_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace hipo::spatial {
namespace {

using geom::BBox;
using geom::Vec2;

BBox box(double x0, double y0, double x1, double y1) {
  BBox b;
  b.lo = {x0, y0};
  b.hi = {x1, y1};
  return b;
}

TEST(GridIndex, EmptyPoints) {
  const GridIndex index(box(0, 0, 10, 10), {});
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.query_radius({5, 5}, 100.0).empty());
}

TEST(GridIndex, SinglePointHit) {
  const GridIndex index(box(0, 0, 10, 10), {{3, 3}});
  const auto hits = index.query_radius({3.5, 3.0}, 1.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);
  EXPECT_TRUE(index.query_radius({9, 9}, 1.0).empty());
}

TEST(GridIndex, RadiusBoundaryInclusive) {
  const GridIndex index(box(0, 0, 10, 10), {{0, 0}, {4, 0}});
  const auto hits = index.query_radius({0, 0}, 4.0);
  EXPECT_EQ(hits.size(), 2u);
}

TEST(GridIndex, PointOutsideBoundsStillIndexed) {
  const GridIndex index(box(0, 0, 10, 10), {{-2, -2}});
  const auto hits = index.query_radius({-1, -1}, 3.0);
  EXPECT_EQ(hits.size(), 1u);
}

TEST(GridIndex, RejectsDegenerateBox) {
  EXPECT_THROW(GridIndex(box(0, 0, 0, 10), {}), hipo::ConfigError);
  EXPECT_THROW(GridIndex(box(0, 0, 10, 10), {}, 0.0), hipo::ConfigError);
}

TEST(GridIndex, NegativeRadiusThrows) {
  const GridIndex index(box(0, 0, 10, 10), {{1, 1}});
  EXPECT_THROW(index.query_radius({0, 0}, -1.0), hipo::ConfigError);
}

TEST(GridIndex, QueryBox) {
  const GridIndex index(box(0, 0, 10, 10), {{1, 1}, {5, 5}, {9, 9}});
  const auto hits = index.query_box(box(0, 0, 6, 6));
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 0u);
  EXPECT_EQ(hits[1], 1u);
}

TEST(GridIndex, ResultsSorted) {
  const GridIndex index(box(0, 0, 10, 10),
                        {{5, 5}, {5.1, 5.0}, {4.9, 5.0}, {5.0, 5.1}});
  const auto hits = index.query_radius({5, 5}, 1.0);
  EXPECT_TRUE(std::is_sorted(hits.begin(), hits.end()));
  EXPECT_EQ(hits.size(), 4u);
}

// Property: grid queries agree with a brute-force scan for many random
// point sets, query centers, and radii, across grid densities.
class GridOracleTest : public ::testing::TestWithParam<double> {};

TEST_P(GridOracleTest, MatchesBruteForce) {
  hipo::Rng rng(static_cast<std::uint64_t>(GetParam() * 100) + 3);
  std::vector<Vec2> points;
  for (int i = 0; i < 200; ++i) {
    points.push_back({rng.uniform(0, 40), rng.uniform(0, 40)});
  }
  const GridIndex index(box(0, 0, 40, 40), points, GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    const Vec2 c{rng.uniform(-5, 45), rng.uniform(-5, 45)};
    const double r = rng.uniform(0.0, 15.0);
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (geom::distance(points[i], c) <= r) expected.push_back(i);
    }
    EXPECT_EQ(index.query_radius(c, r), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, GridOracleTest,
                         ::testing::Values(0.5, 1.0, 2.0, 8.0, 64.0));

}  // namespace
}  // namespace hipo::spatial
