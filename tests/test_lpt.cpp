#include "src/parallel/lpt.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace hipo::parallel {
namespace {

/// Exact minimum makespan by exhaustive assignment (small instances).
double brute_force_makespan(const std::vector<double>& tasks,
                            std::size_t machines) {
  double best = 1e18;
  std::vector<std::size_t> assign(tasks.size(), 0);
  const auto total = static_cast<std::size_t>(
      std::pow(static_cast<double>(machines), static_cast<double>(tasks.size())));
  for (std::size_t code = 0; code < total; ++code) {
    std::size_t c = code;
    std::vector<double> loads(machines, 0.0);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      loads[c % machines] += tasks[i];
      c /= machines;
    }
    best = std::min(best, *std::max_element(loads.begin(), loads.end()));
  }
  return best;
}

TEST(Lpt, RequiresMachines) {
  EXPECT_THROW(lpt_schedule({1.0}, 0), hipo::ConfigError);
  EXPECT_THROW(round_robin_schedule({1.0}, 0), hipo::ConfigError);
}

TEST(Lpt, EmptyTasks) {
  const auto s = lpt_schedule({}, 3);
  EXPECT_EQ(s.makespan, 0.0);
  EXPECT_TRUE(s.machine_of.empty());
}

TEST(Lpt, SingleMachineSumsAll) {
  const auto s = lpt_schedule({1.0, 2.0, 3.0}, 1);
  EXPECT_DOUBLE_EQ(s.makespan, 6.0);
  for (std::size_t m : s.machine_of) EXPECT_EQ(m, 0u);
}

TEST(Lpt, LoadsConsistentWithAssignment) {
  hipo::Rng rng(1);
  std::vector<double> tasks;
  for (int i = 0; i < 30; ++i) tasks.push_back(rng.uniform(0.1, 5.0));
  const auto s = lpt_schedule(tasks, 4);
  std::vector<double> loads(4, 0.0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    ASSERT_LT(s.machine_of[i], 4u);
    loads[s.machine_of[i]] += tasks[i];
  }
  for (std::size_t m = 0; m < 4; ++m) EXPECT_NEAR(loads[m], s.loads[m], 1e-9);
  EXPECT_NEAR(s.makespan, *std::max_element(loads.begin(), loads.end()),
              1e-9);
}

TEST(Lpt, ClassicWorstCaseStaysWithinGrahamBound) {
  // Graham's tight example for m=2: tasks {3,3,2,2,2}; OPT=6, LPT=7.
  const std::vector<double> tasks{3, 3, 2, 2, 2};
  const auto s = lpt_schedule(tasks, 2);
  EXPECT_DOUBLE_EQ(s.makespan, 7.0);
  const double opt = brute_force_makespan(tasks, 2);
  EXPECT_DOUBLE_EQ(opt, 6.0);
  EXPECT_LE(s.makespan, (4.0 / 3.0 - 1.0 / 6.0) * opt + 1e-9);
}

TEST(Lpt, MoreMachinesThanTasks) {
  const auto s = lpt_schedule({5.0, 1.0}, 10);
  EXPECT_DOUBLE_EQ(s.makespan, 5.0);
}

TEST(Lpt, DeterministicTieBreaking) {
  const std::vector<double> tasks{1.0, 1.0, 1.0, 1.0};
  const auto s1 = lpt_schedule(tasks, 2);
  const auto s2 = lpt_schedule(tasks, 2);
  EXPECT_EQ(s1.machine_of, s2.machine_of);
}

TEST(RoundRobin, CyclesMachines) {
  const auto s = round_robin_schedule({1, 1, 1, 1, 1}, 2);
  EXPECT_EQ(s.machine_of, (std::vector<std::size_t>{0, 1, 0, 1, 0}));
  EXPECT_DOUBLE_EQ(s.makespan, 3.0);
}

// Graham's 4/3 − 1/(3m) approximation guarantee, verified against the
// brute-force optimum across random small instances and machine counts.
class GrahamBoundTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GrahamBoundTest, WithinFourThirds) {
  const std::size_t machines = GetParam();
  hipo::Rng rng(machines * 97 + 5);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> tasks;
    const int n = 2 + static_cast<int>(rng.below(7));  // keep brute force fast
    for (int i = 0; i < n; ++i) tasks.push_back(rng.uniform(0.1, 4.0));
    const double opt = brute_force_makespan(tasks, machines);
    const auto s = lpt_schedule(tasks, machines);
    const double bound =
        (4.0 / 3.0 - 1.0 / (3.0 * static_cast<double>(machines))) * opt;
    EXPECT_LE(s.makespan, bound + 1e-9)
        << "n=" << n << " machines=" << machines;
    EXPECT_GE(s.makespan, opt - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Machines, GrahamBoundTest,
                         ::testing::Values(2u, 3u, 4u));

}  // namespace
}  // namespace hipo::parallel
