#include "src/model/piecewise.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace hipo::model {
namespace {

TEST(RingLadder, ValidatesParameters) {
  EXPECT_THROW(RingLadder(0.0, 1.0, 1.0, 2.0, 0.1), hipo::ConfigError);
  EXPECT_THROW(RingLadder(1.0, 0.0, 1.0, 2.0, 0.1), hipo::ConfigError);
  EXPECT_THROW(RingLadder(1.0, 1.0, 2.0, 1.0, 0.1), hipo::ConfigError);
  EXPECT_THROW(RingLadder(1.0, 1.0, 1.0, 2.0, 0.0), hipo::ConfigError);
}

TEST(RingLadder, ExactPowerFormula) {
  const RingLadder lad(100.0, 40.0, 5.0, 10.0, 0.3);
  EXPECT_NEAR(lad.exact_power(5.0), 100.0 / (45.0 * 45.0), 1e-12);
  EXPECT_NEAR(lad.exact_power(10.0), 100.0 / (50.0 * 50.0), 1e-12);
}

TEST(RingLadder, OuterRadiiEndAtDmax) {
  const RingLadder lad(100.0, 40.0, 5.0, 10.0, 0.3);
  ASSERT_FALSE(lad.outer_radii().empty());
  EXPECT_DOUBLE_EQ(lad.outer_radii().back(), 10.0);
  for (double r : lad.outer_radii()) {
    EXPECT_GT(r, 5.0);
    EXPECT_LE(r, 10.0);
  }
}

TEST(RingLadder, RingIndexOutsideDomain) {
  const RingLadder lad(100.0, 40.0, 5.0, 10.0, 0.3);
  EXPECT_FALSE(lad.ring_index(4.9).has_value());
  EXPECT_FALSE(lad.ring_index(10.1).has_value());
  EXPECT_TRUE(lad.ring_index(5.0).has_value());
  EXPECT_TRUE(lad.ring_index(10.0).has_value());
}

TEST(RingLadder, ApproxZeroOutsideDomain) {
  const RingLadder lad(100.0, 40.0, 5.0, 10.0, 0.3);
  EXPECT_DOUBLE_EQ(lad.approx_power(1.0), 0.0);
  EXPECT_DOUBLE_EQ(lad.approx_power(20.0), 0.0);
}

TEST(RingLadder, ApproxIsRingOuterPower) {
  const RingLadder lad(100.0, 40.0, 5.0, 10.0, 0.3);
  for (std::size_t r = 0; r < lad.num_rings(); ++r) {
    const double outer = lad.outer_radii()[r];
    EXPECT_NEAR(lad.ring_power(r), lad.exact_power(outer), 1e-12);
    // The approximation at the ring's outer edge is exact.
    EXPECT_NEAR(lad.approx_power(outer), lad.exact_power(outer), 1e-12);
  }
}

TEST(RingLadder, MonotoneNonIncreasingPowers) {
  const RingLadder lad(130.0, 52.0, 3.0, 8.0, 0.2);
  for (std::size_t r = 1; r < lad.num_rings(); ++r) {
    EXPECT_LE(lad.ring_power(r), lad.ring_power(r - 1));
  }
}

TEST(RingLadder, SmallerEpsMoreRings) {
  const RingLadder coarse(100.0, 40.0, 2.0, 10.0, 0.5);
  const RingLadder fine(100.0, 40.0, 2.0, 10.0, 0.02);
  EXPECT_GT(fine.num_rings(), coarse.num_rings());
}

// Lemma 4.1 property: 1 <= P(d)/P̃(d) <= 1+ε₁ on [d_min, d_max], across
// random parameterizations.
struct LadderParams {
  double a, b, d_min, d_max, eps1;
};

class Lemma41Test : public ::testing::TestWithParam<double> {};

TEST_P(Lemma41Test, ApproximationRatioBounded) {
  const double eps1 = GetParam();
  hipo::Rng rng(static_cast<std::uint64_t>(eps1 * 1e6) + 19);
  for (int trial = 0; trial < 40; ++trial) {
    const double a = rng.uniform(50.0, 300.0);
    const double b = rng.uniform(5.0, 100.0);
    const double d_min = rng.uniform(0.0, 5.0);
    const double d_max = d_min + rng.uniform(1.0, 15.0);
    const RingLadder lad(a, b, d_min, d_max, eps1);
    for (int probe = 0; probe < 200; ++probe) {
      const double d = rng.uniform(d_min, d_max);
      const double exact = lad.exact_power(d);
      const double approx = lad.approx_power(d);
      ASSERT_GT(approx, 0.0) << "d=" << d;
      const double ratio = exact / approx;
      EXPECT_GE(ratio, 1.0 - 1e-9) << "d=" << d << " eps1=" << eps1;
      EXPECT_LE(ratio, 1.0 + eps1 + 1e-9) << "d=" << d << " eps1=" << eps1;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, Lemma41Test,
                         ::testing::Values(0.05, 0.1, 0.2, 0.42857, 0.8));

TEST(RingLadder, RingCountMatchesTheory) {
  // Lemma 4.4 ingredient: the number of rings is O(1/ε₁) — verify the
  // K − k₀ formula's scaling for a representative parameterization.
  const double a = 100.0, b = 40.0, d_min = 5.0, d_max = 10.0;
  for (double eps1 : {0.05, 0.1, 0.2, 0.4}) {
    const RingLadder lad(a, b, d_min, d_max, eps1);
    const double bound =
        2.0 * (std::log1p(d_max / b) - std::log1p(d_min / b)) /
            std::log1p(eps1) +
        2.0;
    EXPECT_LE(static_cast<double>(lad.num_rings()), bound + 1e-9);
  }
}

TEST(RingLadder, BoundariesExactlyOnRungsKeepRatioBound) {
  // Regression (found by hipo_fuzz): the ring enumeration used ±1e-12
  // nudges around the log-derived indices, so a d_min or d_max within a few
  // ulp of a rung radius l(k) could gain or lose a ring and break the
  // Lemma 4.1 ratio bound. With small b the relative excess 2δ/(l+b) of a
  // misplaced boundary is large enough to observe. Boundaries exactly on
  // l(k) and 8e-13 to either side must all keep every ring's worst-case
  // ratio P/P̃ within 1 + ε₁.
  const double a = 1.7, b = 0.018, eps1 = 0.3;
  const double log1e = std::log1p(eps1);
  const auto l = [&](long long k) {
    return b * (std::exp(0.5 * static_cast<double>(k) * log1e) - 1.0);
  };
  for (const double d_min : {0.0, l(1), l(1) - 8e-13, l(1) + 8e-13}) {
    for (const double d_max : {l(3), l(3) - 8e-13, l(3) + 8e-13}) {
      const RingLadder lad(a, b, d_min, d_max, eps1);
      EXPECT_DOUBLE_EQ(lad.outer_radii().back(), d_max);
      for (std::size_t r = 0; r < lad.num_rings(); ++r) {
        const double inner = r == 0 ? d_min : lad.outer_radii()[r - 1];
        const double outer = lad.outer_radii()[r];
        ASSERT_LT(inner, outer);
        const double ratio = lad.exact_power(inner) / lad.exact_power(outer);
        EXPECT_LE(ratio, (1.0 + eps1) * (1.0 + 1e-11))
            << "d_min=" << d_min << " d_max=" << d_max << " ring=" << r;
      }
    }
  }
}

TEST(RingLadder, RingIndexAtExactRungBoundaries) {
  // Each outer radius belongs to its own ring (closed outer boundary), and
  // approx_power there returns exactly that ring's stored power.
  const RingLadder lad(100.0, 40.0, 5.0, 10.0, 0.3);
  EXPECT_EQ(*lad.ring_index(5.0), 0u);
  for (std::size_t r = 0; r < lad.num_rings(); ++r) {
    const double outer = lad.outer_radii()[r];
    const auto idx = lad.ring_index(outer);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(*idx, r);
    EXPECT_EQ(lad.approx_power(outer), lad.ring_power(r));
  }
}

TEST(RingLadder, DminZeroStartsAtApex) {
  const RingLadder lad(100.0, 40.0, 0.0, 10.0, 0.3);
  EXPECT_TRUE(lad.ring_index(0.0).has_value());
  EXPECT_EQ(*lad.ring_index(0.0), 0u);
  EXPECT_GT(lad.approx_power(0.0), 0.0);
}

}  // namespace
}  // namespace hipo::model
