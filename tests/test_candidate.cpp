#include "src/pdcs/candidate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/util/rng.hpp"

namespace hipo::pdcs {
namespace {

Candidate make_candidate(std::vector<std::size_t> covered,
                         std::vector<double> powers, std::size_t type = 0) {
  Candidate c;
  c.strategy.type = type;
  c.covered = std::move(covered);
  c.powers = std::move(powers);
  return c;
}

TEST(CoverageMask, SetAndTest) {
  CoverageMask m(130);
  m.set(0);
  m.set(64);
  m.set(129);
  EXPECT_TRUE(m.test(0));
  EXPECT_TRUE(m.test(64));
  EXPECT_TRUE(m.test(129));
  EXPECT_FALSE(m.test(1));
  EXPECT_FALSE(m.test(128));
  EXPECT_EQ(m.count(), 3u);
}

TEST(CoverageMask, SubsetAcrossWords) {
  CoverageMask a(130), b(130);
  a.set(3);
  a.set(70);
  b.set(3);
  b.set(70);
  b.set(100);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
}

TEST(DominatedBy, StrictSubsetWithHigherPower) {
  const auto a = make_candidate({1, 3}, {0.1, 0.2});
  const auto b = make_candidate({1, 2, 3}, {0.1, 0.5, 0.3});
  EXPECT_TRUE(dominated_by(a, b));
  EXPECT_FALSE(dominated_by(b, a));
}

TEST(DominatedBy, SubsetButLowerPowerNotDominated) {
  const auto a = make_candidate({1}, {0.5});
  const auto b = make_candidate({1, 2}, {0.1, 0.1});
  EXPECT_FALSE(dominated_by(a, b));
}

TEST(DominatedBy, EquivalentCandidates) {
  const auto a = make_candidate({1, 2}, {0.1, 0.2});
  const auto b = make_candidate({1, 2}, {0.1, 0.2});
  EXPECT_TRUE(dominated_by(a, b));
  EXPECT_TRUE(dominated_by(b, a));
}

TEST(DominatedBy, DisjointSetsNotDominated) {
  const auto a = make_candidate({1}, {0.1});
  const auto b = make_candidate({2}, {0.1});
  EXPECT_FALSE(dominated_by(a, b));
  EXPECT_FALSE(dominated_by(b, a));
}

TEST(FilterDominated, KeepsMaximal) {
  std::vector<Candidate> cands;
  cands.push_back(make_candidate({1}, {0.1}));
  cands.push_back(make_candidate({1, 2}, {0.1, 0.2}));
  cands.push_back(make_candidate({3}, {0.4}));
  const auto kept = filter_dominated(std::move(cands), 5);
  ASSERT_EQ(kept.size(), 2u);
}

TEST(FilterDominated, RemovesDuplicates) {
  std::vector<Candidate> cands;
  cands.push_back(make_candidate({1, 2}, {0.1, 0.2}));
  cands.push_back(make_candidate({1, 2}, {0.1, 0.2}));
  const auto kept = filter_dominated(std::move(cands), 5);
  EXPECT_EQ(kept.size(), 1u);
}

TEST(FilterDominated, DropsEmptyCoverage) {
  std::vector<Candidate> cands;
  cands.push_back(make_candidate({}, {}));
  cands.push_back(make_candidate({1}, {0.1}));
  const auto kept = filter_dominated(std::move(cands), 5);
  EXPECT_EQ(kept.size(), 1u);
}

TEST(FilterDominated, IncomparablePowersBothKept) {
  // Same coverage set, each better on a different device: neither dominates.
  std::vector<Candidate> cands;
  cands.push_back(make_candidate({1, 2}, {0.5, 0.1}));
  cands.push_back(make_candidate({1, 2}, {0.1, 0.5}));
  const auto kept = filter_dominated(std::move(cands), 5);
  EXPECT_EQ(kept.size(), 2u);
}

// Property: after filtering, (a) no kept candidate is dominated by another
// kept candidate; (b) every input candidate is dominated by (or equal to)
// some kept candidate.
class FilterPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FilterPropertyTest, SoundAndComplete) {
  hipo::Rng rng(static_cast<std::uint64_t>(GetParam()) * 71 + 13);
  const std::size_t num_devices = 12;
  std::vector<Candidate> input;
  for (int i = 0; i < 60; ++i) {
    Candidate c;
    c.strategy.type = 0;
    for (std::size_t j = 0; j < num_devices; ++j) {
      if (rng.uniform() < 0.3) {
        c.covered.push_back(j);
        // Quantized powers so domination chains actually occur.
        c.powers.push_back(0.1 * static_cast<double>(1 + rng.below(3)));
      }
    }
    input.push_back(c);
  }
  auto copy = input;
  const auto kept = filter_dominated(std::move(copy), num_devices);

  for (std::size_t i = 0; i < kept.size(); ++i) {
    for (std::size_t k = 0; k < kept.size(); ++k) {
      if (i == k) continue;
      // Strict domination between distinct kept candidates is forbidden;
      // mutual equivalence would have been deduplicated.
      EXPECT_FALSE(dominated_by(kept[i], kept[k]) &&
                   !dominated_by(kept[k], kept[i]));
    }
  }
  for (const auto& orig : input) {
    if (orig.covered.empty()) continue;
    bool covered = false;
    for (const auto& k : kept) {
      if (dominated_by(orig, k)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, FilterPropertyTest, ::testing::Range(0, 15));

/// Reference implementation of the dominance filter: the same sort followed
/// by a full scan of all kept candidates (the pre-inverted-index
/// algorithm). The production filter prunes the scan to the kept list of
/// the candidate's least-popular device; survivors must be identical.
std::vector<Candidate> filter_dominated_reference(
    std::vector<Candidate> candidates, std::size_t num_devices) {
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> total_power(candidates.size(), 0.0);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (double p : candidates[i].powers) total_power[i] += p;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    if (candidates[x].covered.size() != candidates[y].covered.size())
      return candidates[x].covered.size() > candidates[y].covered.size();
    if (total_power[x] != total_power[y]) return total_power[x] > total_power[y];
    return x < y;
  });
  std::vector<Candidate> kept;
  std::vector<CoverageMask> kept_masks;
  for (std::size_t idx : order) {
    Candidate& cand = candidates[idx];
    if (cand.covers_nothing()) continue;
    CoverageMask mask(num_devices);
    for (std::size_t j : cand.covered) mask.set(j);
    bool dominated = false;
    for (std::size_t k = 0; k < kept.size(); ++k) {
      if (mask.is_subset_of(kept_masks[k]) && dominated_by(cand, kept[k])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      kept.push_back(std::move(cand));
      kept_masks.push_back(std::move(mask));
    }
  }
  return kept;
}

class FilterEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(FilterEquivalenceTest, MatchesFullScanReference) {
  hipo::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  const std::size_t num_devices = 1 + rng.below(20);
  std::vector<Candidate> input;
  const int n = 1 + static_cast<int>(rng.below(80));
  for (int i = 0; i < n; ++i) {
    Candidate c;
    c.strategy.type = 0;
    for (std::size_t j = 0; j < num_devices; ++j) {
      if (rng.uniform() < 0.4) {
        c.covered.push_back(j);
        c.powers.push_back(0.05 * static_cast<double>(1 + rng.below(4)));
      }
    }
    input.push_back(c);
  }
  auto a = input;
  auto b = input;
  const auto fast = filter_dominated(std::move(a), num_devices);
  const auto reference = filter_dominated_reference(std::move(b), num_devices);

  ASSERT_EQ(fast.size(), reference.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].covered, reference[i].covered) << "survivor " << i;
    EXPECT_EQ(fast[i].powers, reference[i].powers) << "survivor " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, FilterEquivalenceTest,
                         ::testing::Range(0, 20));

TEST(FilterDominated, SparseUniverseMatchesReference) {
  // The filter remaps covered ids onto their dense local universe so its
  // cost scales with the pool, not `num_devices` (extract_all runs it once
  // per device task against the global count). Survivors must still match
  // the reference when the covered ids are a scattered handful out of a
  // huge id space, including the last representable device.
  const std::size_t num_devices = 1'000'000;
  std::vector<Candidate> input;
  input.push_back(make_candidate({123, 500'000, 999'999}, {0.3, 0.3, 0.3}));
  input.push_back(make_candidate({123, 999'999}, {0.2, 0.2}));   // dominated
  input.push_back(make_candidate({123, 500'000}, {0.9, 0.1}));   // kept
  input.push_back(make_candidate({777'777}, {0.4}));             // disjoint
  input.push_back(make_candidate({123, 500'000, 999'999}, {0.3, 0.3, 0.3}));
  auto a = input;
  auto b = input;
  const auto fast = filter_dominated(std::move(a), num_devices);
  const auto reference = filter_dominated_reference(std::move(b), num_devices);
  ASSERT_EQ(fast.size(), reference.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].covered, reference[i].covered) << "survivor " << i;
    EXPECT_EQ(fast[i].powers, reference[i].powers) << "survivor " << i;
  }
}

}  // namespace
}  // namespace hipo::pdcs
