#include "src/ext/hungarian.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace hipo::ext {
namespace {

/// Brute-force min-cost assignment by permutation scan (rows <= cols <= 8).
double brute_force_assignment(const std::vector<double>& cost,
                              std::size_t rows, std::size_t cols) {
  std::vector<std::size_t> perm(cols);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  double best = 1e30;
  do {
    double total = 0.0;
    for (std::size_t r = 0; r < rows; ++r) total += cost[r * cols + perm[r]];
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(Hungarian, Validates) {
  EXPECT_THROW(hungarian({1.0}, 0, 1), hipo::ConfigError);
  EXPECT_THROW(hungarian({1.0, 2.0}, 2, 1), hipo::ConfigError);
  EXPECT_THROW(hungarian({1.0}, 1, 2), hipo::ConfigError);
}

TEST(Hungarian, OneByOne) {
  const auto r = hungarian({3.5}, 1, 1);
  EXPECT_EQ(r.col_of[0], 0u);
  EXPECT_DOUBLE_EQ(r.total_cost, 3.5);
  EXPECT_TRUE(r.feasible);
}

TEST(Hungarian, IdentityIsOptimal) {
  // Diagonal zeros, off-diagonal ones.
  const std::vector<double> cost{0, 1, 1, 1, 0, 1, 1, 1, 0};
  const auto r = hungarian(cost, 3, 3);
  EXPECT_DOUBLE_EQ(r.total_cost, 0.0);
  EXPECT_EQ(r.col_of, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Hungarian, ClassicExample) {
  // Well-known 3×3 instance: optimum is 5 (1+3+1? verify: rows pick
  // distinct cols minimizing sum).
  const std::vector<double> cost{4, 1, 3, 2, 0, 5, 3, 2, 2};
  const auto r = hungarian(cost, 3, 3);
  EXPECT_DOUBLE_EQ(r.total_cost, brute_force_assignment(cost, 3, 3));
}

TEST(Hungarian, RectangularAssignsAllRows) {
  const std::vector<double> cost{5, 1, 9, 9, 9, 1};  // 2 rows × 3 cols
  const auto r = hungarian(cost, 2, 3);
  EXPECT_DOUBLE_EQ(r.total_cost, 2.0);
  std::set<std::size_t> cols(r.col_of.begin(), r.col_of.end());
  EXPECT_EQ(cols.size(), 2u);  // distinct columns
}

TEST(Hungarian, ForbiddenEdgesReportInfeasible) {
  const std::vector<double> cost{kForbidden, kForbidden, 1.0, kForbidden};
  const auto r = hungarian(cost, 2, 2);
  EXPECT_FALSE(r.feasible);
}

TEST(Hungarian, ForbiddenAvoidedWhenPossible) {
  const std::vector<double> cost{kForbidden, 2.0, 3.0, kForbidden};
  const auto r = hungarian(cost, 2, 2);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.total_cost, 5.0);
  EXPECT_EQ(r.col_of, (std::vector<std::size_t>{1, 0}));
}

TEST(Hungarian, NegativeCostsSupported) {
  const std::vector<double> cost{-5, 0, 0, -5};
  const auto r = hungarian(cost, 2, 2);
  EXPECT_DOUBLE_EQ(r.total_cost, -10.0);
}

// Property: matches brute force on random square and rectangular matrices.
class HungarianOracleTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(HungarianOracleTest, MatchesBruteForce) {
  const auto [rows, cols] = GetParam();
  hipo::Rng rng(rows * 1000 + cols * 13 + 7);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> cost(rows * cols);
    for (double& c : cost) c = rng.uniform(0.0, 10.0);
    const auto r = hungarian(cost, rows, cols);
    EXPECT_NEAR(r.total_cost, brute_force_assignment(cost, rows, cols), 1e-9);
    // Assignment validity: distinct columns.
    std::set<std::size_t> used(r.col_of.begin(), r.col_of.end());
    EXPECT_EQ(used.size(), rows);
    for (std::size_t c : r.col_of) EXPECT_LT(c, cols);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, HungarianOracleTest,
    ::testing::Values(std::make_pair(std::size_t{2}, std::size_t{2}),
                      std::make_pair(std::size_t{3}, std::size_t{3}),
                      std::make_pair(std::size_t{5}, std::size_t{5}),
                      std::make_pair(std::size_t{7}, std::size_t{7}),
                      std::make_pair(std::size_t{3}, std::size_t{6}),
                      std::make_pair(std::size_t{5}, std::size_t{8})));


TEST(Hungarian, ZeroRowsIsEmptyAndFeasible) {
  // Degenerate redeploy instance: a charger type with nothing deployed.
  const auto square = hungarian({}, 0, 0);
  EXPECT_TRUE(square.feasible);
  EXPECT_TRUE(square.col_of.empty());
  EXPECT_DOUBLE_EQ(square.total_cost, 0.0);

  const auto wide = hungarian({}, 0, 3);
  EXPECT_TRUE(wide.feasible);
  EXPECT_TRUE(wide.col_of.empty());
  EXPECT_DOUBLE_EQ(wide.total_cost, 0.0);
}

TEST(Hungarian, AllEqualCostsAssignDistinctColumns) {
  // Fully degenerate duals: any permutation is optimal, but the columns
  // must still be distinct and the total exact.
  std::vector<double> cost(4 * 4, 2.5);
  const auto r = hungarian(cost, 4, 4);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.total_cost, 10.0);
  const std::set<std::size_t> cols(r.col_of.begin(), r.col_of.end());
  EXPECT_EQ(cols.size(), 4u);
}

}  // namespace
}  // namespace hipo::ext
