// opt::DeltaSolver: the incremental re-solve path. The headline contract is
// bit-identity — after every prefix of a delta sequence the warm solver's
// matrix, selection, placement, and utilities are byte-for-byte equal to a
// cold solve of the mutated scenario — plus the JSONL script parser and the
// op validation semantics.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/model/scenario.hpp"
#include "src/opt/coverage_matrix.hpp"
#include "src/opt/delta.hpp"
#include "src/opt/greedy.hpp"
#include "src/parallel/thread_pool.hpp"
#include "src/pdcs/extract.hpp"
#include "src/util/error.hpp"
#include "tests/test_helpers.hpp"

namespace hipo {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_results_identical(const opt::GreedyResult& warm,
                              const opt::GreedyResult& cold,
                              const std::string& label) {
  EXPECT_EQ(warm.selected, cold.selected) << label;
  EXPECT_EQ(bits(warm.approx_utility), bits(cold.approx_utility)) << label;
  EXPECT_EQ(bits(warm.exact_utility), bits(cold.exact_utility)) << label;
  ASSERT_EQ(warm.placement.size(), cold.placement.size()) << label;
  for (std::size_t i = 0; i < warm.placement.size(); ++i) {
    EXPECT_EQ(bits(warm.placement[i].pos.x), bits(cold.placement[i].pos.x))
        << label << " slot " << i;
    EXPECT_EQ(bits(warm.placement[i].pos.y), bits(cold.placement[i].pos.y))
        << label << " slot " << i;
    EXPECT_EQ(bits(warm.placement[i].orientation),
              bits(cold.placement[i].orientation))
        << label << " slot " << i;
    EXPECT_EQ(warm.placement[i].type, cold.placement[i].type)
        << label << " slot " << i;
  }
}

/// Cold reference: fresh extraction + the span-based greedy, exactly the
/// configuration DeltaSolver defaults to.
void expect_matches_cold(const opt::DeltaSolver& delta,
                         const std::string& label) {
  const model::Scenario cold_scenario{model::Scenario::Config(delta.config())};
  const auto extraction = pdcs::extract_all(cold_scenario);
  const opt::CoverageMatrix cold_matrix(
      std::span<const pdcs::Candidate>(extraction.candidates),
      cold_scenario.num_devices());
  EXPECT_TRUE(delta.matrix().same_as(cold_matrix)) << label << " (matrix)";
  const auto cold = opt::select_strategies(
      cold_scenario, extraction.candidates, opt::GreedyMode::kLazyGlobal,
      opt::ObjectiveKind::kUtility);
  expect_results_identical(delta.result(), cold, label);
}

/// Deterministic grid scan for the skip-th position no obstacle interior
/// contains (valid for devices and obstacle centers alike).
geom::Vec2 free_spot(const model::Scenario::Config& cfg, std::size_t skip) {
  const geom::Vec2 ext = cfg.region.extent();
  std::size_t seen = 0;
  for (int gy = 1; gy < 10; ++gy) {
    for (int gx = 1; gx < 10; ++gx) {
      const geom::Vec2 p{cfg.region.lo.x + ext.x * gx / 10.0,
                         cfg.region.lo.y + ext.y * gy / 10.0};
      bool free = true;
      for (const auto& h : cfg.obstacles) {
        if (h.contains_interior(p, 1e-6)) {
          free = false;
          break;
        }
      }
      if (!free) continue;
      if (seen++ == skip) return p;
    }
  }
  ADD_FAILURE() << "no free spot found";
  return cfg.region.lo;
}

/// Small axis-aligned square around `center`, nudged sideways until it
/// swallows no device.
std::vector<geom::Vec2> obstacle_rect_at(const model::Scenario::Config& cfg,
                                         geom::Vec2 center, double half) {
  for (const auto& d : cfg.devices) {
    if (std::abs(d.pos.x - center.x) <= half + 1e-6 &&
        std::abs(d.pos.y - center.y) <= half + 1e-6) {
      return obstacle_rect_at(cfg, {center.x + 2.5 * half, center.y}, half);
    }
  }
  return {{center.x - half, center.y - half},
          {center.x + half, center.y - half},
          {center.x + half, center.y + half},
          {center.x - half, center.y + half}};
}

opt::DeltaOp add_device_op(geom::Vec2 p, std::size_t type = 0) {
  opt::DeltaOp op;
  op.kind = opt::DeltaOp::Kind::kAddDevice;
  op.device = test::device_at(p.x, p.y, 0.0, type);
  return op;
}

opt::DeltaOp remove_device_op(std::size_t index) {
  opt::DeltaOp op;
  op.kind = opt::DeltaOp::Kind::kRemoveDevice;
  op.index = index;
  return op;
}

opt::DeltaOp move_device_op(std::size_t index, geom::Vec2 p) {
  opt::DeltaOp op;
  op.kind = opt::DeltaOp::Kind::kMoveDevice;
  op.index = index;
  op.pos = p;
  return op;
}

opt::DeltaOp add_obstacle_op(std::vector<geom::Vec2> vertices) {
  opt::DeltaOp op;
  op.kind = opt::DeltaOp::Kind::kAddObstacle;
  op.obstacle = std::move(vertices);
  return op;
}

opt::DeltaOp remove_obstacle_op(std::size_t index) {
  opt::DeltaOp op;
  op.kind = opt::DeltaOp::Kind::kRemoveObstacle;
  op.index = index;
  return op;
}

/// A spread-out scenario where the 4·d_max invalidation disk is small
/// relative to the region — deltas in one corner must not touch the rest.
model::Scenario::Config spread_config() {
  auto cfg = test::simple_config();  // one type, d_max = 5 → radius ≈ 20
  cfg.region.lo = {0.0, 0.0};
  cfg.region.hi = {100.0, 100.0};
  cfg.charger_counts = {4};
  for (const double x : {5.0, 50.0, 95.0}) {
    for (const double y : {5.0, 50.0, 95.0}) {
      cfg.devices.push_back(test::device_at(x, y));
      cfg.devices.push_back(test::device_at(x + 2.0, y + 1.0));
    }
  }
  cfg.obstacles = {geom::make_rect({48.0, 44.0}, {54.0, 46.0}),
                   geom::make_rect({8.0, 90.0}, {11.0, 94.0})};
  return cfg;
}

TEST(DeltaSolver, ColdConstructionMatchesColdSolve) {
  auto cfg = test::simple_config();
  cfg.devices = {test::device_at(10, 10), test::device_at(12, 10),
                 test::device_at(10, 13), test::device_at(4, 4)};
  cfg.obstacles = {geom::make_rect({11.0, 9.5}, {12.0, 10.5})};
  const opt::DeltaSolver delta{model::Scenario::Config(cfg)};
  expect_matches_cold(delta, "cold construction");
  EXPECT_GT(delta.num_candidates(), 0u);
}

TEST(DeltaSolver, DeviceChurnBitIdenticalAfterEveryPrefix) {
  const auto scenario = test::small_paper_scenario(5);
  opt::DeltaSolver delta(scenario.to_config());
  expect_matches_cold(delta, "prefix 0 (cold)");

  std::vector<opt::DeltaOp> ops;
  ops.push_back(add_device_op(free_spot(delta.config(), 0)));
  ops.push_back(move_device_op(0, free_spot(delta.config(), 7)));
  ops.push_back(remove_device_op(1));
  ops.push_back(add_device_op(free_spot(delta.config(), 12),
                              delta.config().device_types.size() - 1));
  for (std::size_t k = 0; k < ops.size(); ++k) {
    const auto stats = delta.apply(ops[k]);
    EXPECT_EQ(stats.tasks_total, delta.config().devices.size());
    expect_matches_cold(delta, "device prefix " + std::to_string(k + 1));
  }
  // One more computed against the mutated state: move the appended device.
  const std::size_t last = delta.config().devices.size() - 1;
  delta.apply(move_device_op(last, free_spot(delta.config(), 3)));
  expect_matches_cold(delta, "device prefix tail");
}

TEST(DeltaSolver, MoveWithOrientationBitIdentical) {
  const auto scenario = test::small_paper_scenario(11);
  opt::DeltaSolver delta(scenario.to_config());
  opt::DeltaOp op = move_device_op(2, free_spot(delta.config(), 9));
  op.has_orientation = true;
  op.orientation = 1.25;
  delta.apply(op);
  EXPECT_EQ(bits(delta.config().devices[2].orientation), bits(1.25));
  expect_matches_cold(delta, "move with orientation");
}

TEST(DeltaSolver, ObstacleChurnBitIdenticalAfterEveryPrefix) {
  const auto scenario = test::small_paper_scenario(7);
  opt::DeltaSolver delta(scenario.to_config());

  const auto rect = obstacle_rect_at(delta.config(),
                                     free_spot(delta.config(), 5), 1.5);
  delta.apply(add_obstacle_op(rect));
  expect_matches_cold(delta, "obstacle add");

  ASSERT_GE(delta.config().obstacles.size(), 2u);
  delta.apply(remove_obstacle_op(0));  // a pre-existing obstacle
  expect_matches_cold(delta, "obstacle remove first");

  delta.apply(remove_obstacle_op(delta.config().obstacles.size() - 1));
  expect_matches_cold(delta, "obstacle remove added");
}

TEST(DeltaSolver, ThreadCountInvariance) {
  const auto scenario = test::small_paper_scenario(13);
  parallel::ThreadPool pool1(1);
  parallel::ThreadPool pool4(4);
  opt::DeltaOptions seq;
  opt::DeltaOptions one;
  one.workers = &pool1;
  opt::DeltaOptions four;
  four.workers = &pool4;

  opt::DeltaSolver a(scenario.to_config(), seq);
  opt::DeltaSolver b(scenario.to_config(), one);
  opt::DeltaSolver c(scenario.to_config(), four);
  std::vector<opt::DeltaOp> ops;
  ops.push_back(add_device_op(free_spot(a.config(), 2)));
  ops.push_back(move_device_op(1, free_spot(a.config(), 8)));
  ops.push_back(remove_device_op(0));
  ops.push_back(add_obstacle_op(
      obstacle_rect_at(a.config(), free_spot(a.config(), 14), 1.0)));
  for (std::size_t k = 0; k < ops.size(); ++k) {
    a.apply(ops[k]);
    b.apply(ops[k]);
    c.apply(ops[k]);
    const std::string label = "threads prefix " + std::to_string(k + 1);
    EXPECT_TRUE(a.matrix().same_as(b.matrix())) << label;
    EXPECT_TRUE(a.matrix().same_as(c.matrix())) << label;
    expect_results_identical(b.result(), a.result(), label + " (1 vs 0)");
    expect_results_identical(c.result(), a.result(), label + " (4 vs 0)");
  }
  expect_matches_cold(c, "threads final vs cold");
}

TEST(DeltaSolver, RemoveToEmptyAndRegrow) {
  auto cfg = test::simple_config();
  cfg.devices = {test::device_at(10, 10), test::device_at(14, 11)};
  opt::DeltaSolver delta{model::Scenario::Config(cfg)};

  delta.apply(remove_device_op(1));
  expect_matches_cold(delta, "down to one device");
  delta.apply(remove_device_op(0));
  EXPECT_EQ(delta.config().devices.size(), 0u);
  EXPECT_EQ(delta.num_candidates(), 0u);
  EXPECT_TRUE(delta.result().placement.empty());
  delta.apply(add_device_op({8.0, 9.0}));
  expect_matches_cold(delta, "regrown from empty");
}

TEST(DeltaSolver, ForcedFullRebuildIsStillBitIdentical) {
  const auto scenario = test::small_paper_scenario(17);
  opt::DeltaOptions always_rebuild;
  always_rebuild.rebuild_fraction = 0.0;
  opt::DeltaSolver forced(scenario.to_config(), always_rebuild);
  opt::DeltaSolver incremental(scenario.to_config());

  const auto op = move_device_op(3, free_spot(forced.config(), 6));
  const auto fstats = forced.apply(op);
  const auto istats = incremental.apply(op);
  EXPECT_TRUE(fstats.full_rebuild);
  EXPECT_EQ(fstats.tasks_regenerated, fstats.tasks_total);
  EXPECT_TRUE(forced.matrix().same_as(incremental.matrix()));
  expect_results_identical(forced.result(), incremental.result(),
                           "forced vs incremental");
  EXPECT_EQ(fstats.rows_erased + fstats.rows_kept,
            istats.rows_erased + istats.rows_kept);
}

TEST(DeltaSolver, LocalDeltaRegeneratesOnlyTheNeighborhood) {
  opt::DeltaSolver delta{spread_config()};
  const std::size_t rows_before = delta.matrix().num_rows();

  // Move a corner device by one meter: only the corner cluster (2 devices
  // plus nothing else within the 4·d_max ≈ 20 m disk) may re-extract.
  const auto stats = delta.apply(move_device_op(0, {6.0, 6.0}));
  EXPECT_FALSE(stats.full_rebuild);
  EXPECT_EQ(stats.tasks_total, 18u);
  EXPECT_LE(stats.tasks_regenerated, 4u);
  EXPECT_GT(stats.rows_kept, 0u);
  EXPECT_LT(stats.rows_erased + stats.rows_inserted, rows_before);
  expect_matches_cold(delta, "local move");

  // An obstacle appearing in the middle leaves the corners untouched.
  const auto obst_stats = delta.apply(add_obstacle_op(
      obstacle_rect_at(delta.config(), {60.0, 55.0}, 2.0)));
  EXPECT_FALSE(obst_stats.full_rebuild);
  EXPECT_LT(obst_stats.tasks_regenerated, obst_stats.tasks_total);
  expect_matches_cold(delta, "local obstacle");
}

TEST(DeltaSolver, InvalidOpsThrowAndLeaveTheSolverUsable) {
  auto cfg = test::simple_config();
  cfg.devices = {test::device_at(10, 10), test::device_at(12, 12)};
  cfg.obstacles = {geom::make_rect({5.0, 5.0}, {6.0, 6.0})};
  opt::DeltaSolver delta{model::Scenario::Config(cfg)};

  EXPECT_THROW(delta.apply(remove_device_op(2)), ConfigError);
  EXPECT_THROW(delta.apply(move_device_op(7, {1.0, 1.0})), ConfigError);
  EXPECT_THROW(delta.apply(move_device_op(0, {999.0, 1.0})), ConfigError);
  EXPECT_THROW(delta.apply(move_device_op(0, {5.5, 5.5})), ConfigError);
  EXPECT_THROW(delta.apply(remove_obstacle_op(1)), ConfigError);
  EXPECT_THROW(delta.apply(add_obstacle_op({{0.0, 0.0}, {1.0, 0.0}})),
               ConfigError);
  // Obstacle swallowing a device.
  EXPECT_THROW(delta.apply(add_obstacle_op(
                   {{9.0, 9.0}, {11.0, 9.0}, {11.0, 11.0}, {9.0, 11.0}})),
               ConfigError);
  opt::DeltaOp bad_device = add_device_op({15.0, 15.0});
  bad_device.device.p_th = 0.0;
  EXPECT_THROW(delta.apply(bad_device), ConfigError);
  bad_device.device.p_th = 0.05;
  bad_device.device.type = 9;
  EXPECT_THROW(delta.apply(bad_device), ConfigError);

  // The rejected ops mutated nothing: the solver still matches cold.
  expect_matches_cold(delta, "after rejected ops");
  delta.apply(move_device_op(0, {11.0, 10.0}));
  expect_matches_cold(delta, "good op after rejected ops");
}

TEST(DeltaScript, ParsesEveryOpKindWithDefaults) {
  const std::string text =
      "# churn script\n"
      "\n"
      "{\"op\":\"add_device\",\"x\":1.5,\"y\":2.5}\n"
      "{\"op\":\"add_device\",\"x\":1,\"y\":2,\"orientation\":0.5,"
      "\"type\":2,\"p_th\":0.1,\"weight\":3.0}\n"
      "{\"op\":\"remove_device\",\"index\":4}\n"
      "{\"op\":\"move_device\",\"index\":1,\"x\":-3.25,\"y\":8}\n"
      "{\"op\":\"move_device\",\"index\":0,\"x\":1,\"y\":1,"
      "\"orientation\":2.5}\n"
      "{\"op\":\"add_obstacle\",\"vertices\":[[0,0],[2,0],[1,2]]}\n"
      "{\"op\":\"remove_obstacle\",\"index\":0}\n";
  const auto ops = opt::parse_delta_script(text);
  ASSERT_EQ(ops.size(), 7u);

  EXPECT_EQ(ops[0].kind, opt::DeltaOp::Kind::kAddDevice);
  EXPECT_EQ(bits(ops[0].device.pos.x), bits(1.5));
  EXPECT_EQ(bits(ops[0].device.pos.y), bits(2.5));
  EXPECT_EQ(ops[0].device.type, 0u);
  EXPECT_EQ(bits(ops[0].device.p_th), bits(0.05));
  EXPECT_EQ(bits(ops[0].device.weight), bits(1.0));

  EXPECT_EQ(ops[1].device.type, 2u);
  EXPECT_EQ(bits(ops[1].device.orientation), bits(0.5));
  EXPECT_EQ(bits(ops[1].device.p_th), bits(0.1));
  EXPECT_EQ(bits(ops[1].device.weight), bits(3.0));

  EXPECT_EQ(ops[2].kind, opt::DeltaOp::Kind::kRemoveDevice);
  EXPECT_EQ(ops[2].index, 4u);

  EXPECT_EQ(ops[3].kind, opt::DeltaOp::Kind::kMoveDevice);
  EXPECT_FALSE(ops[3].has_orientation);
  EXPECT_EQ(bits(ops[3].pos.x), bits(-3.25));

  EXPECT_TRUE(ops[4].has_orientation);
  EXPECT_EQ(bits(ops[4].orientation), bits(2.5));

  EXPECT_EQ(ops[5].kind, opt::DeltaOp::Kind::kAddObstacle);
  ASSERT_EQ(ops[5].obstacle.size(), 3u);
  EXPECT_EQ(bits(ops[5].obstacle[2].y), bits(2.0));

  EXPECT_EQ(ops[6].kind, opt::DeltaOp::Kind::kRemoveObstacle);
  EXPECT_EQ(ops[6].index, 0u);
}

TEST(DeltaScript, RejectsMalformedLinesNamingThem) {
  const auto expect_fails = [](const std::string& line,
                               const std::string& needle) {
    try {
      opt::parse_delta_script(line);
      ADD_FAILURE() << "accepted: " << line;
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_fails("{\"op\":\"warp_device\",\"index\":0}", "unknown op");
  expect_fails("{\"x\":1,\"y\":2}", "missing \"op\"");
  expect_fails("{\"op\":\"add_device\",\"x\":1}", "missing \"y\"");
  expect_fails("{\"op\":\"remove_device\",\"index\":-1}",
               "non-negative integer");
  expect_fails("{\"op\":\"remove_device\",\"index\":1.5}",
               "non-negative integer");
  expect_fails("{\"op\":\"remove_device\",\"index\":1} trailing", "trailing");
  expect_fails("{\"op\":\"add_device\",\"x\":nope,\"y\":2}", "number");
  expect_fails("{\"op\":\"add_device\",\"x\":1,\"x\":2,\"y\":3}",
               "duplicate key");
  expect_fails("{\"op\":\"add_obstacle\"}", "vertices");
  expect_fails("{\"op\":\"add_device\",\"x\":1e999,\"y\":0}", "finite");
  expect_fails("{\"op\":\"move_device\"", "expected");
  expect_fails("{\"op\":\"remove_device\",\"op\":\"add_device\",\"index\":0}",
               "duplicate key \"op\"");
  expect_fails(
      "{\"op\":\"add_obstacle\",\"vertices\":[[0,0],[1,0],[0,1]],"
      "\"vertices\":[[2,2],[3,2],[2,3]]}",
      "duplicate key \"vertices\"");
  expect_fails("{\"op\":\"remove_device\",\"idx\":1}",
               "unknown field \"idx\"");
  expect_fails("{\"op\":\"add_device\",\"x\":1,\"y\":2,\"pth\":0.1}",
               "unknown field \"pth\"");
  expect_fails(
      "{\"op\":\"move_device\",\"index\":0,\"x\":1,\"y\":2,"
      "\"vertices\":[[0,0],[1,0],[0,1]]}",
      "only valid for add_obstacle");
}

TEST(DeltaScript, ErrorsCarryTheOneBasedLineNumber) {
  const std::string text =
      "# comment\n"
      "{\"op\":\"remove_device\",\"index\":0}\n"
      "\n"
      "{\"op\":\"remove_device\",\"index\":0,\"bogus\":1}\n";
  try {
    opt::parse_delta_script(text);
    ADD_FAILURE() << "accepted a script with an unknown field";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("\"bogus\""), std::string::npos) << what;
  }
}

TEST(DeltaScript, ScriptDrivenChurnMatchesDirectOps) {
  auto cfg = test::simple_config();
  cfg.devices = {test::device_at(10, 10), test::device_at(13, 9)};
  const std::string text =
      "{\"op\":\"add_device\",\"x\":6,\"y\":12}\n"
      "{\"op\":\"move_device\",\"index\":1,\"x\":14,\"y\":12}\n"
      "{\"op\":\"add_obstacle\",\"vertices\":[[11,10.5],[12,10.5],"
      "[12,11.5],[11,11.5]]}\n"
      "{\"op\":\"remove_device\",\"index\":0}\n";
  opt::DeltaSolver delta{model::Scenario::Config(cfg)};
  for (const auto& op : opt::parse_delta_script(text)) delta.apply(op);
  expect_matches_cold(delta, "script-driven churn");
}

}  // namespace
}  // namespace hipo
