// SegmentIndex correctness: every accelerated obstacle query must be
// bit-identical to the brute-force scan over all polygons (the index only
// prunes which polygons get the exact predicate).
#include "src/spatial/segment_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/discretize/shadow_map.hpp"
#include "src/model/scenario_gen.hpp"
#include "src/pdcs/extract.hpp"
#include "src/util/rng.hpp"

namespace hipo::spatial {
namespace {

using geom::BBox;
using geom::Polygon;
using geom::Segment;
using geom::Vec2;

BBox box(double x0, double y0, double x1, double y1) {
  BBox b;
  b.lo = {x0, y0};
  b.hi = {x1, y1};
  return b;
}

/// Random mix of convex obstacle shapes inside [0,40]^2 (overlap allowed —
/// the predicates do not care).
std::vector<Polygon> random_polygons(hipo::Rng& rng, int count) {
  std::vector<Polygon> polys;
  for (int i = 0; i < count; ++i) {
    const Vec2 c{rng.uniform(2, 38), rng.uniform(2, 38)};
    const double r = rng.uniform(0.5, 4.0);
    const int sides = 3 + static_cast<int>(rng.uniform(0, 5));
    polys.push_back(
        geom::make_regular_polygon(c, r, sides, rng.uniform(0, geom::kTwoPi)));
  }
  return polys;
}

// --- brute-force oracles --------------------------------------------------

bool brute_blocked(const std::vector<Polygon>& polys, const Segment& seg) {
  for (const auto& h : polys) {
    if (h.blocks_segment(seg)) return true;
  }
  return false;
}

bool brute_in_any(const std::vector<Polygon>& polys, Vec2 p) {
  for (const auto& h : polys) {
    if (h.contains(p)) return true;
  }
  return false;
}

std::vector<std::size_t> brute_near(const std::vector<Polygon>& polys, Vec2 p,
                                    double r) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < polys.size(); ++i) {
    double nearest = std::numeric_limits<double>::infinity();
    for (std::size_t e = 0; e < polys[i].size(); ++e) {
      nearest =
          std::min(nearest, geom::point_segment_distance(p, polys[i].edge(e)));
    }
    if (nearest <= r) out.push_back(i);
  }
  return out;
}

std::vector<SegmentIndex::EdgeRef> brute_edges_near(
    const std::vector<Polygon>& polys, Vec2 p, double r) {
  std::vector<SegmentIndex::EdgeRef> out;
  for (std::size_t i = 0; i < polys.size(); ++i) {
    for (std::size_t e = 0; e < polys[i].size(); ++e) {
      if (geom::point_segment_distance(p, polys[i].edge(e)) <= r) {
        out.push_back({static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(e)});
      }
    }
  }
  return out;
}

// --- basics ---------------------------------------------------------------

TEST(SegmentIndex, EmptyIndexAnswersNegative) {
  const SegmentIndex def;
  EXPECT_EQ(def.num_polygons(), 0u);
  EXPECT_FALSE(def.segment_blocked({{0, 0}, {100, 100}}));
  EXPECT_FALSE(def.point_in_any({0, 0}));
  EXPECT_TRUE(def.polygons_in_box(box(-1e9, -1e9, 1e9, 1e9)).empty());

  const SegmentIndex empty(box(0, 0, 40, 40), {});
  EXPECT_EQ(empty.num_edges(), 0u);
  EXPECT_FALSE(empty.segment_blocked({{-5, -5}, {45, 45}}));
  EXPECT_TRUE(empty.edges_near({20, 20}, 100.0).empty());
}

TEST(SegmentIndex, SingleSquareBasics) {
  std::vector<Polygon> polys{geom::make_rect({10, 10}, {20, 20})};
  const SegmentIndex index(box(0, 0, 40, 40), polys);
  // Through the interior: blocked.
  EXPECT_TRUE(index.segment_blocked({{5, 15}, {35, 15}}));
  // Fully outside: clear.
  EXPECT_FALSE(index.segment_blocked({{5, 5}, {35, 5}}));
  // Endpoint deep inside, other end outside: blocked.
  EXPECT_TRUE(index.segment_blocked({{15, 15}, {35, 35}}));
  // Containment matches boundary-inclusive Polygon::contains.
  EXPECT_TRUE(index.point_in_any({15, 15}));
  EXPECT_TRUE(index.point_in_any({10, 15}));  // on boundary
  EXPECT_FALSE(index.point_in_any({9.999, 15}));
  // boundary_distance is the exact min edge distance.
  EXPECT_NEAR(index.boundary_distance(0, {5, 15}), 5.0, 1e-12);
  EXPECT_NEAR(index.boundary_distance(0, {15, 15}), 5.0, 1e-12);
}

TEST(SegmentIndex, DegenerateQueries) {
  std::vector<Polygon> polys{geom::make_rect({10, 10}, {20, 20})};
  const SegmentIndex index(box(0, 0, 40, 40), polys);
  // Zero-length segments: interior point vs exterior point.
  EXPECT_EQ(index.segment_blocked({{15, 15}, {15, 15}}),
            brute_blocked(polys, {{15, 15}, {15, 15}}));
  EXPECT_EQ(index.segment_blocked({{5, 5}, {5, 5}}),
            brute_blocked(polys, {{5, 5}, {5, 5}}));
  // Grazing a vertex without entering the interior does not block —
  // the index must agree with the exact predicate, not overreport.
  const Segment graze{{0, 0}, {20, 20}};  // touches corner (10,10)? No:
  // (0,0)-(20,20) passes through (10,10) and then the interior. Use the
  // diagonal that only touches the corner (10,10) from outside:
  const Segment corner{{0, 20}, {20, 0}};  // passes through (10,10) corner
  EXPECT_EQ(index.segment_blocked(corner), brute_blocked(polys, corner));
  EXPECT_EQ(index.segment_blocked(graze), brute_blocked(polys, graze));
  // Sliding exactly along an edge.
  const Segment along{{10, 10}, {10, 20}};
  EXPECT_EQ(index.segment_blocked(along), brute_blocked(polys, along));
}

TEST(SegmentIndex, ObstacleLargerThanGridCell) {
  // Many small polygons force a fine grid; the big rectangle then spans
  // many cells. A segment entirely inside the big rectangle's interior
  // never touches its edges' cells — the endpoint polygon-bbox lists must
  // still report the blockage.
  hipo::Rng rng(7);
  auto polys = random_polygons(rng, 60);
  polys.push_back(geom::make_rect({8, 8}, {32, 32}));
  const SegmentIndex index(box(0, 0, 40, 40), polys);
  EXPECT_GT(index.num_cells(), 16u);  // grid actually subdivided
  const Segment inside{{18, 20}, {22, 20}};
  EXPECT_TRUE(index.segment_blocked(inside));
  EXPECT_EQ(index.segment_blocked(inside), brute_blocked(polys, inside));
  EXPECT_TRUE(index.point_in_any({20, 20}));
}

// --- randomized oracle comparison ----------------------------------------

class SegmentOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(SegmentOracleTest, MatchesBruteForce) {
  const int num_polys = GetParam();
  hipo::Rng rng(static_cast<std::uint64_t>(num_polys) * 977 + 5);
  const auto polys = random_polygons(rng, num_polys);
  const SegmentIndex index(box(0, 0, 40, 40), polys);
  // The degenerate one-cell index is the brute-force path itself; checking
  // it too guards the accelerate_obstacles=false configuration.
  const SegmentIndex one_cell(box(0, 0, 40, 40), polys, 1e30);
  EXPECT_EQ(one_cell.num_cells(), 1u);

  for (int trial = 0; trial < 300; ++trial) {
    const Segment seg{{rng.uniform(-5, 45), rng.uniform(-5, 45)},
                      {rng.uniform(-5, 45), rng.uniform(-5, 45)}};
    const bool expect = brute_blocked(polys, seg);
    EXPECT_EQ(index.segment_blocked(seg), expect);
    EXPECT_EQ(one_cell.segment_blocked(seg), expect);

    const Vec2 p = seg.a;
    EXPECT_EQ(index.point_in_any(p), brute_in_any(polys, p));

    const double r = rng.uniform(0.0, 12.0);
    EXPECT_EQ(index.polygons_near(p, r), brute_near(polys, p, r));
    const auto edges = index.edges_near(p, r);
    const auto expect_edges = brute_edges_near(polys, p, r);
    ASSERT_EQ(edges.size(), expect_edges.size());
    for (std::size_t i = 0; i < edges.size(); ++i) {
      EXPECT_EQ(edges[i], expect_edges[i]);
    }
  }
}

TEST_P(SegmentOracleTest, ShortSegmentsMatchBruteForce) {
  // Charging-range-scale segments (the LOS workload shape).
  const int num_polys = GetParam();
  hipo::Rng rng(static_cast<std::uint64_t>(num_polys) * 31 + 11);
  const auto polys = random_polygons(rng, num_polys);
  const SegmentIndex index(box(0, 0, 40, 40), polys);
  for (int trial = 0; trial < 300; ++trial) {
    const Vec2 a{rng.uniform(0, 40), rng.uniform(0, 40)};
    const double ang = rng.uniform(0, geom::kTwoPi);
    const double len = rng.uniform(0.0, 6.0);
    const Segment seg{a, a + geom::unit_vector(ang) * len};
    EXPECT_EQ(index.segment_blocked(seg), brute_blocked(polys, seg));
  }
}

INSTANTIATE_TEST_SUITE_P(PolygonCounts, SegmentOracleTest,
                         ::testing::Values(1, 4, 16, 64));

// --- integration with Scenario and ShadowMap ------------------------------

/// Rebuilds `base` with the obstacle grid disabled (one-cell index = the
/// brute-force scan); everything else identical.
model::Scenario without_acceleration(const model::Scenario& base) {
  model::Scenario::Config cfg;
  for (std::size_t q = 0; q < base.num_charger_types(); ++q) {
    cfg.charger_types.push_back(base.charger_type(q));
  }
  for (std::size_t t = 0; t < base.num_device_types(); ++t) {
    cfg.device_types.push_back(base.device_type(t));
  }
  for (std::size_t q = 0; q < base.num_charger_types(); ++q) {
    for (std::size_t t = 0; t < base.num_device_types(); ++t) {
      cfg.pair_params.push_back(base.pair_params(q, t));
    }
  }
  cfg.charger_counts = base.charger_counts();
  cfg.devices = base.devices();
  cfg.obstacles = base.obstacles();
  cfg.region = base.region();
  cfg.eps1 = base.eps1();
  cfg.accelerate_obstacles = false;
  return model::Scenario(std::move(cfg));
}

class ScenarioEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioEquivalenceTest, PredicatesMatchBruteForce) {
  model::GenOptions gen;
  gen.num_obstacles = GetParam();
  hipo::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  const auto scenario = model::make_paper_scenario(gen, rng);
  const auto& polys = scenario.obstacles();
  ASSERT_EQ(polys.size(), static_cast<std::size_t>(GetParam()));

  for (int trial = 0; trial < 200; ++trial) {
    const Vec2 a{rng.uniform(0, 40), rng.uniform(0, 40)};
    const Vec2 b{rng.uniform(0, 40), rng.uniform(0, 40)};
    EXPECT_EQ(scenario.line_of_sight(a, b), !brute_blocked(polys, {a, b}));
    EXPECT_EQ(scenario.position_feasible(a),
              scenario.region().contains(a, geom::kEps) &&
                  !brute_in_any(polys, a));
  }
}

TEST_P(ScenarioEquivalenceTest, ShadowMapConstructorsAgree) {
  model::GenOptions gen;
  gen.num_obstacles = std::max(1, GetParam());
  hipo::Rng rng(static_cast<std::uint64_t>(GetParam()) * 941 + 23);
  const auto scenario = model::make_paper_scenario(gen, rng);

  for (std::size_t j = 0; j < std::min<std::size_t>(scenario.num_devices(), 8);
       ++j) {
    const Vec2 origin = scenario.device(j).pos;
    const double range = scenario.max_charge_range();
    const discretize::ShadowMap by_vector(origin, scenario.obstacles(), range);
    const discretize::ShadowMap by_index(origin, scenario.obstacle_index(),
                                         range);
    ASSERT_EQ(by_vector.relevant_obstacles().size(),
              by_index.relevant_obstacles().size());
    for (std::size_t k = 0; k < by_vector.relevant_obstacles().size(); ++k) {
      EXPECT_EQ(by_vector.relevant_obstacles()[k]->vertices(),
                by_index.relevant_obstacles()[k]->vertices());
    }
    EXPECT_EQ(by_vector.event_angles(), by_index.event_angles());
    for (int trial = 0; trial < 50; ++trial) {
      const Vec2 p{rng.uniform(0, 40), rng.uniform(0, 40)};
      EXPECT_EQ(by_vector.visible(p), by_index.visible(p));
      const double theta = rng.uniform(0, geom::kTwoPi);
      EXPECT_EQ(by_vector.first_block_distance(theta),
                by_index.first_block_distance(theta));
    }
  }
}

TEST_P(ScenarioEquivalenceTest, ExtractionIsBitIdentical) {
  // The whole pipeline — candidate extraction through greedy selection —
  // must produce bit-identical results with and without the obstacle grid.
  model::GenOptions gen;
  gen.num_obstacles = GetParam();
  gen.device_multiplier = 2;
  hipo::Rng rng(static_cast<std::uint64_t>(GetParam()) * 389 + 29);
  const auto fast = model::make_paper_scenario(gen, rng);
  const auto slow = without_acceleration(fast);

  const auto rf = pdcs::extract_all(fast);
  const auto rs = pdcs::extract_all(slow);
  ASSERT_EQ(rf.candidates.size(), rs.candidates.size());
  for (std::size_t i = 0; i < rf.candidates.size(); ++i) {
    const auto& a = rf.candidates[i];
    const auto& b = rs.candidates[i];
    EXPECT_EQ(a.strategy.pos.x, b.strategy.pos.x);
    EXPECT_EQ(a.strategy.pos.y, b.strategy.pos.y);
    EXPECT_EQ(a.strategy.orientation, b.strategy.orientation);
    EXPECT_EQ(a.strategy.type, b.strategy.type);
    EXPECT_EQ(a.covered, b.covered);
    EXPECT_EQ(a.powers, b.powers);
  }
}

INSTANTIATE_TEST_SUITE_P(ObstacleCounts, ScenarioEquivalenceTest,
                         ::testing::Values(0, 2, 8, 24));

}  // namespace
}  // namespace hipo::spatial
