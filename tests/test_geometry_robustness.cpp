// Degenerate and near-degenerate geometry: tangencies, collinearity,
// grazing contacts, tiny features, large coordinates. These are the inputs
// that break naive epsilon handling; the kernel must stay consistent (no
// crashes, predicates agree with constructions).
#include <gtest/gtest.h>

#include <cmath>

#include "src/discretize/shadow_map.hpp"
#include "src/geometry/circle.hpp"
#include "src/geometry/polygon.hpp"
#include "src/geometry/sector_ring.hpp"
#include "src/geometry/segment.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace hipo::geom {
namespace {

TEST(Robustness, NearTangentCircles) {
  // Circles whose gap is within/just outside tolerance.
  for (double gap : {-1e-12, 0.0, 1e-12, 1e-6, 1e-3}) {
    const Circle a({0, 0}, 1.0);
    const Circle b({2.0 + gap, 0}, 1.0);
    const auto pts = circle_circle_intersections(a, b);
    if (gap <= 1e-9) {
      ASSERT_GE(pts.size(), 1u) << "gap " << gap;
      for (const auto& p : pts) {
        EXPECT_NEAR(distance(p, a.center), 1.0, 1e-4);
        EXPECT_NEAR(distance(p, b.center), 1.0, 1e-4);
      }
    } else if (gap >= 1e-3) {
      EXPECT_TRUE(pts.empty());
    }
  }
}

TEST(Robustness, AlmostConcentricCircles) {
  const Circle a({0, 0}, 1.0);
  const Circle b({1e-12, 0}, 1.0);
  // Nearly identical circles: either no isolated points or points on both.
  for (const auto& p : circle_circle_intersections(a, b)) {
    EXPECT_NEAR(p.norm(), 1.0, 1e-6);
  }
}

TEST(Robustness, SegmentsSharingEndpointExactly) {
  const Segment s1({0, 0}, {1, 0});
  const Segment s2({1, 0}, {1, 1});
  EXPECT_TRUE(segments_intersect(s1, s2));
  const auto p = segment_intersection_point(s1, s2);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 1.0, 1e-9);
  EXPECT_NEAR(p->y, 0.0, 1e-9);
}

TEST(Robustness, NearlyParallelSegments) {
  // Crossing at a very shallow angle far from endpoints.
  const Segment s1({0, 0}, {100, 1e-5});
  const Segment s2({0, 1e-6}, {100, 0});
  const auto p = segment_intersection_point(s1, s2);
  if (p) {
    EXPECT_LE(point_segment_distance(*p, s1), 1e-3);
    EXPECT_LE(point_segment_distance(*p, s2), 1e-3);
  }
}

TEST(Robustness, TinyPolygonContainment) {
  // The construction floor rejects polygons below ~kEps area; just above
  // it, containment must still work.
  EXPECT_THROW(make_rect({0, 0}, {1e-6, 1e-6}), hipo::ConfigError);
  const auto tiny = make_rect({0, 0}, {1e-3, 1e-3});
  EXPECT_TRUE(tiny.contains({5e-4, 5e-4}));
  EXPECT_FALSE(tiny.contains_interior({2e-3, 5e-4}));
}

TEST(Robustness, LargeCoordinatePolygon) {
  const auto big = make_rect({1e6, 1e6}, {1e6 + 10, 1e6 + 10});
  EXPECT_TRUE(big.contains_interior({1e6 + 5, 1e6 + 5}));
  EXPECT_FALSE(big.contains_interior({1e6 - 1, 1e6 + 5}));
  EXPECT_TRUE(big.blocks_segment({{1e6 - 5, 1e6 + 5}, {1e6 + 15, 1e6 + 5}}));
}

TEST(Robustness, RayThroughPolygonVertexExactly) {
  // Horizontal ray passing exactly through two vertices of a diamond.
  const Polygon diamond({{2, 0}, {3, 1}, {4, 0}, {3, -1}});
  const Ray ray{{0, 0}, {1, 0}};
  int hits = 0;
  for (std::size_t e = 0; e < diamond.size(); ++e) {
    if (ray_segment_hit(ray, diamond.edge(e))) ++hits;
  }
  EXPECT_GE(hits, 2);  // touches at both vertices (each shared by 2 edges)
  // The segment through the diamond's waist is blocked.
  EXPECT_TRUE(diamond.blocks_segment({{0, 0}, {6, 0}}));
}

TEST(Robustness, SectorRingPointExactlyOnBoundaries) {
  const SectorRing ring({0, 0}, 0.0, kPi / 2.0, 1.0, 2.0);
  // Exactly on the angular boundary at exactly r_min and r_max.
  for (double r : {1.0, 2.0}) {
    for (double sign : {-1.0, 1.0}) {
      const Vec2 p = unit_vector(sign * kPi / 4.0) * r;
      EXPECT_TRUE(ring.contains(p)) << "r=" << r << " sign=" << sign;
    }
  }
}

TEST(Robustness, InscribedAnglesNearDegenerate) {
  // Almost-straight inscribed angle: huge circles, still through both
  // points.
  const auto circles = inscribed_angle_circles({0, 0}, {1, 0}, kPi - 1e-4);
  ASSERT_EQ(circles.size(), 2u);
  for (const auto& c : circles) {
    EXPECT_NEAR(distance(c.center, {0, 0}), c.radius, 1e-6 * c.radius + 1e-9);
  }
  // Tiny inscribed angle: radius ~ chord/(2·sin α) explodes but stays
  // finite and consistent.
  const auto wide = inscribed_angle_circles({0, 0}, {1, 0}, 1e-4);
  ASSERT_EQ(wide.size(), 2u);
  EXPECT_GT(wide[0].radius, 1000.0);
}

TEST(Robustness, AngleIntervalHairlineWidths) {
  const AngleInterval hair(1.0, 1e-14);
  EXPECT_TRUE(hair.contains(1.0, 1e-12));
  EXPECT_FALSE(hair.contains(1.1));
  AngleIntervalSet set;
  set.insert(hair);
  set.insert(AngleInterval(3.0, 1e-14));
  EXPECT_LE(set.measure(), 1e-12);
  EXPECT_TRUE(set.complement().is_full() ||
              set.complement().measure() > kTwoPi - 1e-9);
}

TEST(Robustness, PolygonWithNearlyCollinearVertex) {
  // A vertex 1e-9 off the line between its neighbors must not flip
  // containment logic.
  const Polygon p({{0, 0}, {5, 1e-9}, {10, 0}, {10, 5}, {0, 5}});
  EXPECT_TRUE(p.contains_interior({5, 2.5}));
  EXPECT_FALSE(p.contains_interior({5, -0.5}));
  EXPECT_TRUE(p.blocks_segment({{5, -1}, {5, 6}}));
}

TEST(Robustness, ShadowOfSliverObstacle) {
  // A very thin obstacle still blocks exactly its own angular sliver.
  const std::vector<Polygon> slivers{
      Polygon({{2.0, -0.001}, {3.0, -0.001}, {3.0, 0.001}, {2.0, 0.001}})};
  const discretize::ShadowMap sm({0, 0}, slivers, 10.0);
  EXPECT_FALSE(sm.visible({5, 0}));
  EXPECT_TRUE(sm.visible({5, 0.5}));
  EXPECT_TRUE(sm.visible({5, -0.5}));
}

TEST(Robustness, FuzzNoCrashesOnRandomDegenerates) {
  // Throw random near-degenerate inputs at every kernel routine; the only
  // requirement here is consistency guarded inside the calls (no throws
  // other than documented ones, no NaNs in outputs).
  hipo::Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const double scale = std::pow(10.0, rng.uniform(-6.0, 4.0));
    const Vec2 a{rng.uniform(-1, 1) * scale, rng.uniform(-1, 1) * scale};
    const Vec2 b = a + Vec2{rng.uniform(-1e-9, 1e-9),
                            rng.uniform(-1e-9, 1e-9)};
    const Segment s1{a, b};  // near-degenerate segment
    const Segment s2{{rng.uniform(-1, 1) * scale, rng.uniform(-1, 1) * scale},
                     {rng.uniform(-1, 1) * scale, rng.uniform(-1, 1) * scale}};
    (void)segments_intersect(s1, s2);
    if (auto p = segment_intersection_point(s1, s2)) {
      EXPECT_FALSE(std::isnan(p->x));
      EXPECT_FALSE(std::isnan(p->y));
    }
    const Circle c{{rng.uniform(-1, 1) * scale, rng.uniform(-1, 1) * scale},
                   rng.uniform(0.0, 1.0) * scale + 1e-12};
    for (const auto& p : circle_segment_intersections(c, s2)) {
      EXPECT_FALSE(std::isnan(p.x));
      EXPECT_FALSE(std::isnan(p.y));
    }
  }
}

}  // namespace
}  // namespace hipo::geom
