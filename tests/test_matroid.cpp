#include "src/opt/matroid.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace hipo::opt {
namespace {

PartitionMatroid small_matroid() {
  // 6 elements: parts {0,0,1,1,1,2}, capacities {1, 2, 0}.
  return PartitionMatroid({0, 0, 1, 1, 1, 2}, {1, 2, 0});
}

TEST(PartitionMatroid, EmptySetIndependent) {
  const auto m = small_matroid();
  EXPECT_TRUE(m.independent({}));
}

TEST(PartitionMatroid, CapacityEnforced) {
  const auto m = small_matroid();
  const std::vector<std::size_t> ok{0, 2, 3};
  EXPECT_TRUE(m.independent(ok));
  const std::vector<std::size_t> both_of_part0{0, 1};
  EXPECT_FALSE(m.independent(both_of_part0));
  const std::vector<std::size_t> zero_cap{5};
  EXPECT_FALSE(m.independent(zero_cap));
}

TEST(PartitionMatroid, Rank) {
  const auto m = small_matroid();
  EXPECT_EQ(m.rank(), 3u);  // min(1,2) + min(2,3) + min(0,1)
}

TEST(PartitionMatroid, OutOfRangePartThrows) {
  EXPECT_THROW(PartitionMatroid({0, 3}, {1, 1}), hipo::ConfigError);
}

TEST(Tracker, AddAndSaturate) {
  const auto m = small_matroid();
  PartitionMatroid::Tracker t(m);
  EXPECT_TRUE(t.can_add(0));
  t.add(0);
  EXPECT_FALSE(t.can_add(1));  // part 0 full
  EXPECT_FALSE(t.can_add(5));  // zero capacity
  t.add(2);
  t.add(3);
  EXPECT_FALSE(t.can_add(4));
  EXPECT_TRUE(t.saturated());
  EXPECT_EQ(t.size(), 3u);
}

TEST(Tracker, AddBeyondCapacityThrows) {
  const auto m = small_matroid();
  PartitionMatroid::Tracker t(m);
  t.add(0);
  EXPECT_THROW(t.add(1), hipo::InvariantError);
}

// Property-check the matroid axioms on random partition matroids:
// heredity (subsets of independent sets are independent) and the exchange
// property (|X| < |Y| independent → some y∈Y\X keeps X∪{y} independent).
class MatroidAxiomTest : public ::testing::TestWithParam<int> {};

TEST_P(MatroidAxiomTest, HeredityAndExchange) {
  hipo::Rng rng(static_cast<std::uint64_t>(GetParam()) * 37 + 23);
  const std::size_t parts = 1 + rng.below(4);
  const std::size_t n = 4 + rng.below(8);
  std::vector<std::size_t> part_of(n);
  for (auto& p : part_of) p = rng.below(parts);
  std::vector<std::size_t> caps(parts);
  for (auto& c : caps) c = rng.below(4);
  const PartitionMatroid m(part_of, caps);

  auto random_subset = [&](double density) {
    std::vector<std::size_t> s;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.uniform() < density) s.push_back(i);
    }
    return s;
  };
  auto greedy_independent = [&](double density) {
    // Build an independent set by filtering a random subset.
    std::vector<std::size_t> used(parts, 0);
    std::vector<std::size_t> out;
    for (std::size_t i : random_subset(density)) {
      if (used[part_of[i]] < caps[part_of[i]]) {
        ++used[part_of[i]];
        out.push_back(i);
      }
    }
    return out;
  };

  for (int trial = 0; trial < 60; ++trial) {
    // Heredity.
    auto indep = greedy_independent(0.7);
    ASSERT_TRUE(m.independent(indep));
    std::vector<std::size_t> subset;
    for (std::size_t i : indep) {
      if (rng.uniform() < 0.5) subset.push_back(i);
    }
    EXPECT_TRUE(m.independent(subset));

    // Exchange.
    auto x = greedy_independent(0.4);
    auto y = greedy_independent(0.9);
    if (x.size() >= y.size()) continue;
    bool exchanged = false;
    for (std::size_t e : y) {
      if (std::find(x.begin(), x.end(), e) != x.end()) continue;
      auto extended = x;
      extended.push_back(e);
      if (m.independent(extended)) {
        exchanged = true;
        break;
      }
    }
    EXPECT_TRUE(exchanged) << "exchange axiom violated";
  }
}

INSTANTIATE_TEST_SUITE_P(Random, MatroidAxiomTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace hipo::opt
