#include "src/parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace hipo::parallel {
namespace {

TEST(ThreadPool, DefaultHasAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.num_workers(), 1u);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  pool.parallel_for(500, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsNoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(100, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, RethrowsTaskException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(50,
                                 [](std::size_t i) {
                                   if (i == 17) throw std::logic_error("x");
                                 }),
               std::logic_error);
}

TEST(ParallelFor, ResultsMatchSequential) {
  ThreadPool pool(4);
  std::vector<double> out(1000, 0.0);
  pool.parallel_for(out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 0.5);
  }
}

TEST(ThreadPool, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      // Futures intentionally dropped; destructor must not hang or crash.
      (void)pool.submit([&counter] { ++counter; });
    }
  }
  // All enqueued-before-shutdown tasks may or may not run; the invariant is
  // simply that destruction completed without deadlock.
  SUCCEED();
}

}  // namespace
}  // namespace hipo::parallel
