#include "src/parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace hipo::parallel {
namespace {

TEST(ThreadPool, DefaultHasAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.num_workers(), 1u);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  pool.parallel_for(500, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsNoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(100, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, RethrowsTaskException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(50,
                                 [](std::size_t i) {
                                   if (i == 17) throw std::logic_error("x");
                                 }),
               std::logic_error);
}

TEST(ParallelFor, ResultsMatchSequential) {
  ThreadPool pool(4);
  std::vector<double> out(1000, 0.0);
  pool.parallel_for(out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 0.5);
  }
}

// Regression: parallel_for called from inside a pool task used to block in
// future::get() on drain tasks that a busy single-worker pool could never
// schedule. The caller must make progress itself. The watchdog wait_for
// (plus the ctest TIMEOUT) turns a reintroduced deadlock into a failure
// instead of a hang.
TEST(ParallelFor, NestedCallOnSingleWorkerPoolDoesNotDeadlock) {
  ThreadPool pool(1);
  std::atomic<int> inner{0};
  auto outer = pool.submit([&] {
    pool.parallel_for(16, [&](std::size_t) { ++inner; });
    return 1;
  });
  ASSERT_EQ(outer.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "nested parallel_for deadlocked on a 1-worker pool";
  EXPECT_EQ(outer.get(), 1);
  EXPECT_EQ(inner.load(), 16);
}

TEST(ParallelFor, TwoLevelNestingOnSaturatedPool) {
  ThreadPool pool(2);
  std::atomic<int> leaf{0};
  // Every outer iteration spawns an inner loop: with 2 workers the pool is
  // saturated by the outer level, so inner loops must run caller-side.
  auto outer = pool.submit([&] {
    pool.parallel_for(4, [&](std::size_t) {
      pool.parallel_for(8, [&](std::size_t) { ++leaf; });
    });
    return 1;
  });
  ASSERT_EQ(outer.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "two-level nested parallel_for deadlocked";
  EXPECT_EQ(outer.get(), 1);
  EXPECT_EQ(leaf.load(), 32);
}

TEST(ParallelFor, NestedCallRethrowsWithoutHanging) {
  ThreadPool pool(1);
  auto outer = pool.submit([&]() -> int {
    pool.parallel_for(8, [](std::size_t i) {
      if (i == 3) throw std::runtime_error("inner");
    });
    return 1;
  });
  ASSERT_EQ(outer.wait_for(std::chrono::seconds(60)),
            std::future_status::ready);
  EXPECT_THROW(outer.get(), std::runtime_error);
}

TEST(ParallelReduce, SumMatchesSequential) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  const auto map = [](std::size_t begin, std::size_t end) {
    std::uint64_t s = 0;
    for (std::size_t i = begin; i < end; ++i) s += i;
    return s;
  };
  const auto combine = [](std::uint64_t a, std::uint64_t b) { return a + b; };
  const auto total =
      pool.parallel_reduce(n, std::uint64_t{0}, map, combine, 128);
  EXPECT_EQ(total, std::uint64_t{n} * (n - 1) / 2);
}

TEST(ParallelReduce, BitIdenticalAcrossWorkerCounts) {
  // Floating-point chunk sums folded in chunk order: the value must not
  // depend on how many workers computed the chunks — or on whether a pool
  // was used at all (chunked_reduce with a null pool).
  const std::size_t n = 4321;
  const auto map = [](std::size_t begin, std::size_t end) {
    double s = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      s += 1.0 / (1.0 + static_cast<double>(i));
    }
    return s;
  };
  const auto combine = [](double a, double b) { return a + b; };
  const double reference =
      chunked_reduce(nullptr, n, 0.0, map, combine, 64);
  for (std::size_t workers : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(workers);
    const double value = chunked_reduce(&pool, n, 0.0, map, combine, 64);
    EXPECT_EQ(value, reference) << "workers=" << workers;
  }
}

TEST(ParallelReduce, RethrowsMapException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_reduce(
          1000, 0,
          [](std::size_t begin, std::size_t) -> int {
            if (begin >= 512) throw std::logic_error("chunk");
            return 1;
          },
          [](int a, int b) { return a + b; }, 64),
      std::logic_error);
  // The pool must still be usable afterwards (no leaked queue state).
  std::atomic<int> counter{0};
  pool.parallel_for(50, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  ThreadPool pool(2);
  const int value = pool.parallel_reduce(
      0, 7, [](std::size_t, std::size_t) { return 100; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(value, 7);
}

TEST(ThreadPool, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      // Futures intentionally dropped; destructor must not hang or crash.
      (void)pool.submit([&counter] { ++counter; });
    }
  }
  // All enqueued-before-shutdown tasks may or may not run; the invariant is
  // simply that destruction completed without deadlock.
  SUCCEED();
}

}  // namespace
}  // namespace hipo::parallel
