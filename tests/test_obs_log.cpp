// hipo::obs::log — structured JSONL logging, the non-blocking drain ring,
// rate limiting, the flight recorder, and the histogram quantile helper the
// serve latency summaries are built on.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/log.hpp"
#include "src/obs/metrics.hpp"
#include "src/serve/wire.hpp"
#include "src/util/error.hpp"

namespace hipo::obs::log {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) out.push_back(line);
  return out;
}

TEST(LogLevel, NamesRoundTrip) {
  for (const Level level : {Level::kDebug, Level::kInfo, Level::kWarn,
                            Level::kError}) {
    EXPECT_EQ(parse_level(level_name(level)), level);
  }
  EXPECT_THROW(parse_level("verbose"), ConfigError);
  EXPECT_THROW(parse_level(""), ConfigError);
}

TEST(LogRecord, CanonicalDumpSortsKeysAndTypesValues) {
  Record rec;
  rec.u64("zulu", 7)
      .str("alpha", "a \"quoted\" value\n")
      .boolean("mike", false)
      .num("november", 0.5);
  EXPECT_EQ(rec.dump(),
            "{\"alpha\":\"a \\\"quoted\\\" value\\n\",\"mike\":false,"
            "\"november\":0.5,\"zulu\":7}");
}

TEST(LogRecord, LastWriteWinsAndRawEmbedsVerbatim) {
  Record rec;
  rec.str("k", "first").str("k", "second");
  rec.raw("arr", "[1,2,3]");
  EXPECT_EQ(rec.dump(), "{\"arr\":[1,2,3],\"k\":\"second\"}");
}

TEST(LogRecord, RoundTripsThroughStrictWireParser) {
  Record rec;
  rec.str("event", "request")
      .str("request_id", "r17")
      .boolean("ok", true)
      .num("seconds", 0.001525)
      .u64("bytes_in", 123)
      .str("message", "tabs\tand\x01control bytes");
  rec.stamp(Level::kWarn);
  const std::string line = rec.dump();
  // The strict serve parser rejects duplicate keys, non-finite numbers and
  // malformed escapes — a record line must survive it unchanged.
  const serve::Json parsed = serve::parse_json(line);
  ASSERT_TRUE(parsed.is_object());
  EXPECT_EQ(parsed.find("level")->as_string(), "warn");
  EXPECT_EQ(parsed.find("request_id")->as_string(), "r17");
  EXPECT_TRUE(parsed.find("ok")->as_bool());
  EXPECT_DOUBLE_EQ(parsed.find("seconds")->as_number(), 0.001525);
  EXPECT_GT(parsed.find("ts")->as_number(), 0.0);
  // Canonical: dumping the parsed object reproduces the exact bytes.
  EXPECT_EQ(parsed.dump(), line);
}

TEST(LogRecord, NonFiniteNumbersBecomeNull) {
  Record rec;
  rec.num("bad", std::numeric_limits<double>::infinity());
  const std::string line = rec.dump();
  EXPECT_EQ(line, "{\"bad\":null}");
  EXPECT_NO_THROW(serve::parse_json(line));
}

TEST(Logger, WritesRecordsAsJsonlInOrder) {
  std::ostringstream sink;
  {
    Logger logger(sink);
    for (int i = 0; i < 100; ++i) {
      Record rec;
      rec.u64("i", static_cast<std::uint64_t>(i));
      EXPECT_TRUE(logger.write(Level::kInfo, std::move(rec)));
    }
    logger.flush();
    const LoggerStats stats = logger.stats();
    EXPECT_EQ(stats.accepted, 100u);
    EXPECT_EQ(stats.written, 100u);
    EXPECT_EQ(stats.dropped_ring, 0u);
  }
  const auto lines = lines_of(sink.str());
  ASSERT_EQ(lines.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    const serve::Json parsed = serve::parse_json(lines[i]);
    EXPECT_EQ(parsed.find("i")->as_number(), static_cast<double>(i));
    EXPECT_EQ(parsed.find("level")->as_string(), "info");
  }
}

TEST(Logger, MinLevelFiltersAndCounts) {
  std::ostringstream sink;
  Logger logger(sink, {.min_level = Level::kWarn});
  EXPECT_FALSE(logger.enabled(Level::kDebug));
  EXPECT_FALSE(logger.enabled(Level::kInfo));
  EXPECT_TRUE(logger.enabled(Level::kWarn));
  EXPECT_FALSE(logger.write(Level::kInfo, Record{}));
  EXPECT_TRUE(logger.write(Level::kError, Record{}));
  logger.flush();
  const LoggerStats stats = logger.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.dropped_level, 1u);
}

TEST(Logger, RingOverflowDropsWithoutBlocking) {
  std::ostringstream sink;
  // Freeze the drain from the start so the ring genuinely fills;
  // production never pauses.
  Logger logger(sink, {.ring_capacity = 8, .start_paused = true});
  std::uint64_t accepted = 0;
  for (int i = 0; i < 100; ++i) {
    Record rec;
    rec.u64("i", static_cast<std::uint64_t>(i));
    if (logger.write(Level::kInfo, std::move(rec))) ++accepted;
  }
  const LoggerStats stats = logger.stats();
  EXPECT_EQ(accepted, 8u);  // ring capacity, not 100 — and no blocking
  EXPECT_EQ(stats.accepted, 8u);
  EXPECT_EQ(stats.dropped_ring, 92u);
  logger.set_drain_paused_for_test(false);
  logger.flush();
  EXPECT_EQ(lines_of(sink.str()).size(), 8u);
}

TEST(Logger, RateLimitDropsBeyondBudget) {
  std::ostringstream sink;
  Logger logger(sink, {.rate_limit_per_sec = 3});
  std::uint64_t accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (logger.write(Level::kInfo, Record{})) ++accepted;
  }
  logger.flush();
  const LoggerStats stats = logger.stats();
  // The loop takes far under a second, but tolerate one window rollover.
  EXPECT_LE(accepted, 6u);
  EXPECT_GE(stats.dropped_rate, 4u);
  EXPECT_EQ(stats.accepted + stats.dropped_rate, 10u);
}

TEST(Logger, ConcurrentWritersLoseNothingWhenRingIsLargeEnough) {
  std::ostringstream sink;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  {
    Logger logger(sink, {.ring_capacity = 4096});
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&logger, t] {
        for (int i = 0; i < kPerThread; ++i) {
          Record rec;
          rec.u64("t", static_cast<std::uint64_t>(t))
              .u64("i", static_cast<std::uint64_t>(i));
          logger.write(Level::kInfo, std::move(rec));
        }
      });
    }
    for (auto& w : writers) w.join();
    logger.flush();
    const LoggerStats stats = logger.stats();
    EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kThreads) *
                                  kPerThread);
    EXPECT_EQ(stats.written, stats.accepted);
    EXPECT_EQ(stats.dropped_ring, 0u);
  }
  // Every line is intact JSON (no interleaving) and per-thread order holds.
  const auto lines = lines_of(sink.str());
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  std::vector<int> next(kThreads, 0);
  for (const std::string& line : lines) {
    const serve::Json parsed = serve::parse_json(line);
    const int t = static_cast<int>(parsed.find("t")->as_number());
    const int i = static_cast<int>(parsed.find("i")->as_number());
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    EXPECT_EQ(i, next[t]);
    next[t] = i + 1;
  }
}

TEST(Logger, DestructorDrainsEverythingAccepted) {
  std::ostringstream sink;
  {
    Logger logger(sink, {.ring_capacity = 1024});
    for (int i = 0; i < 200; ++i) {
      logger.write(Level::kInfo, Record{});
    }
    // No flush: the destructor must still deliver all 200.
  }
  EXPECT_EQ(lines_of(sink.str()).size(), 200u);
}

TEST(Logger, FileSinkRejectsUnopenablePath) {
  EXPECT_THROW(Logger("/nonexistent-dir/log.jsonl"), ConfigError);
}

TEST(FlightRecorder, KeepsLastNOldestFirst) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.record("line" + std::to_string(i));
  }
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.capacity(), 4u);
  const std::vector<std::string> dump = rec.dump();
  ASSERT_EQ(dump.size(), 4u);
  EXPECT_EQ(dump[0], "line6");
  EXPECT_EQ(dump[3], "line9");
}

TEST(FlightRecorder, PartialFillDumpsOnlyRecorded) {
  FlightRecorder rec(8);
  rec.record("a");
  rec.record("b");
  const std::vector<std::string> dump = rec.dump();
  ASSERT_EQ(dump.size(), 2u);
  EXPECT_EQ(dump[0], "a");
  EXPECT_EQ(dump[1], "b");
}

TEST(FlightRecorder, ZeroCapacityCountsButRetainsNothing) {
  FlightRecorder rec(0);
  rec.record("x");
  EXPECT_EQ(rec.recorded(), 1u);
  EXPECT_TRUE(rec.dump().empty());
}

TEST(FlightRecorder, ConcurrentWritersAndReadersStayConsistent) {
  FlightRecorder rec(64);
  std::atomic<bool> stop{false};
  std::thread reader([&rec, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<std::string> dump = rec.dump();
      EXPECT_LE(dump.size(), 64u);
      for (const std::string& line : dump) {
        EXPECT_FALSE(line.empty());
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&rec, t] {
      for (int i = 0; i < 2000; ++i) {
        rec.record("t" + std::to_string(t) + "i" + std::to_string(i));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(rec.recorded(), 8000u);
  EXPECT_EQ(rec.dump().size(), 64u);
}

TEST(HistogramQuantile, InterpolatesWithinBuckets) {
  const double bounds[] = {1.0, 2.0, 4.0};
  // 10 samples <=1, 10 in (1,2], 0 in (2,4], 0 overflow.
  const std::uint64_t counts[] = {10, 10, 0, 0};
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, counts, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, counts, 0.25), 0.5);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, counts, 0.75), 1.5);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, counts, 1.0), 2.0);
}

TEST(HistogramQuantile, EmptyAndOverflowEdges) {
  const double bounds[] = {1.0, 2.0};
  const std::uint64_t empty[] = {0, 0, 0};
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, empty, 0.5), 0.0);
  // All mass in overflow clamps to the last finite bound.
  const std::uint64_t overflow[] = {0, 0, 5};
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, overflow, 0.5), 2.0);
  // Out-of-range q is clamped.
  const std::uint64_t some[] = {4, 0, 0};
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, some, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, some, 2.0), 1.0);
}

}  // namespace
}  // namespace hipo::obs::log
