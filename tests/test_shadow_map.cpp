#include "src/discretize/shadow_map.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/geometry/angles.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace hipo::discretize {
namespace {

using geom::kPi;
using geom::make_rect;
using geom::Polygon;
using geom::Segment;
using geom::Vec2;

TEST(ShadowMap, NoObstaclesAllVisible) {
  const std::vector<Polygon> none;
  const ShadowMap sm({0, 0}, none, 10.0);
  EXPECT_TRUE(sm.visible({5, 5}));
  EXPECT_EQ(sm.first_block_distance(1.0), ShadowMap::kUnblocked);
  EXPECT_TRUE(sm.blocked_directions().empty());
  EXPECT_TRUE(sm.event_angles().empty());
}

TEST(ShadowMap, ObstacleOutOfRangeIgnored) {
  const std::vector<Polygon> far{make_rect({100, 100}, {101, 101})};
  const ShadowMap sm({0, 0}, far, 10.0);
  EXPECT_TRUE(sm.relevant_obstacles().empty());
  EXPECT_TRUE(sm.visible({5, 5}));
}

TEST(ShadowMap, PointBehindObstacleHidden) {
  // Square from (2,-1) to (3,1); origin looks along +x.
  const std::vector<Polygon> obs{make_rect({2, -1}, {3, 1})};
  const ShadowMap sm({0, 0}, obs, 20.0);
  EXPECT_FALSE(sm.visible({5, 0}));
  EXPECT_TRUE(sm.visible({0, 5}));
  EXPECT_TRUE(sm.visible({1, 0}));  // in front of the obstacle
}

TEST(ShadowMap, FirstBlockDistanceAtFrontFace) {
  const std::vector<Polygon> obs{make_rect({2, -1}, {3, 1})};
  const ShadowMap sm({0, 0}, obs, 20.0);
  EXPECT_NEAR(sm.first_block_distance(0.0), 2.0, 1e-9);
  EXPECT_EQ(sm.first_block_distance(kPi), ShadowMap::kUnblocked);
  EXPECT_EQ(sm.first_block_distance(kPi / 2.0), ShadowMap::kUnblocked);
}

TEST(ShadowMap, BlockedDirectionsCoverObstacleCone) {
  const std::vector<Polygon> obs{make_rect({2, -1}, {3, 1})};
  const ShadowMap sm({0, 0}, obs, 20.0);
  // The cone toward the square spans atan2(±1, 2).
  EXPECT_TRUE(sm.blocked_directions().contains(0.0));
  EXPECT_TRUE(sm.blocked_directions().contains(std::atan2(0.9, 2.1)));
  EXPECT_FALSE(sm.blocked_directions().contains(kPi));
}

TEST(ShadowMap, EventAnglesAreVertexDirections) {
  const std::vector<Polygon> obs{make_rect({2, -1}, {3, 1})};
  const ShadowMap sm({0, 0}, obs, 20.0);
  EXPECT_EQ(sm.event_angles().size(), 4u);
  bool found = false;
  for (double a : sm.event_angles()) {
    if (std::abs(a - geom::norm_angle(std::atan2(1.0, 2.0))) < 1e-12)
      found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ShadowMap, RequiresPositiveRange) {
  const std::vector<Polygon> none;
  EXPECT_THROW(ShadowMap({0, 0}, none, 0.0), hipo::ConfigError);
}

TEST(ShadowMap, GrazingVertexVisible) {
  // Looking exactly along the top edge level of the square: a ray that
  // grazes the corner without entering the interior stays visible.
  const std::vector<Polygon> obs{make_rect({2, -1}, {3, 1})};
  const ShadowMap sm({0, 1}, obs, 20.0);  // origin level with the top edge
  EXPECT_TRUE(sm.visible({5, 1}));
}

// Property: visible(p) agrees with the direct segment-blockage oracle, and
// first_block_distance is consistent with visibility along the ray.
class ShadowOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(ShadowOracleTest, AgreesWithSegmentOracle) {
  hipo::Rng rng(static_cast<std::uint64_t>(GetParam()) * 53 + 29);
  std::vector<Polygon> obstacles;
  const int n_obs = 1 + static_cast<int>(rng.below(3));
  for (int i = 0; i < n_obs; ++i) {
    const Vec2 c{rng.uniform(-6, 6), rng.uniform(-6, 6)};
    if (c.norm() < 1.0) continue;  // keep origin outside obstacles
    obstacles.push_back(geom::make_regular_polygon(
        c, rng.uniform(0.5, 1.5), 3 + static_cast<int>(rng.below(5)),
        rng.angle()));
  }
  const ShadowMap sm({0, 0}, obstacles, 12.0);

  for (int probe = 0; probe < 300; ++probe) {
    const Vec2 p{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    bool oracle = true;
    for (const auto& h : obstacles) {
      if (h.blocks_segment(Segment({0, 0}, p))) oracle = false;
    }
    EXPECT_EQ(sm.visible(p), oracle) << "p=" << p;
  }

  for (int probe = 0; probe < 100; ++probe) {
    const double theta = rng.angle();
    const double block = sm.first_block_distance(theta);
    if (block == ShadowMap::kUnblocked) {
      // A point well within range along this ray must be visible.
      const Vec2 p = geom::unit_vector(theta) * 11.0;
      EXPECT_TRUE(sm.visible(p)) << "theta=" << theta;
    } else {
      // Just before the block: visible; just after: hidden.
      const Vec2 before = geom::unit_vector(theta) * (block - 1e-4);
      const Vec2 after = geom::unit_vector(theta) * (block + 1e-3);
      EXPECT_TRUE(sm.visible(before)) << "theta=" << theta << " d=" << block;
      EXPECT_FALSE(sm.visible(after)) << "theta=" << theta << " d=" << block;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, ShadowOracleTest, ::testing::Range(0, 12));

TEST(ShadowMap, ApexOnObstacleVertex) {
  // Degenerate placement: the view origin sits exactly on an obstacle
  // vertex. Rays into the square's interior are blocked; rays that merely
  // graze the shared vertex are not (interior-blockage semantics).
  const std::vector<Polygon> obs{make_rect({0, 0}, {1, 1})};
  const ShadowMap sm({0, 0}, obs, 10.0);
  EXPECT_FALSE(sm.visible({5, 5}));   // through the interior
  EXPECT_TRUE(sm.visible({-5, -5}));  // directly away from the square
  EXPECT_TRUE(sm.visible({-3, 4}));   // clear of the square entirely
}

TEST(ShadowMap, ApexOnObstacleEdgeMidpoint) {
  // Sliding along the boundary does not enter the interior; crossing does.
  const std::vector<Polygon> obs{make_rect({-1, 0}, {1, 1})};
  const ShadowMap sm({0, 0}, obs, 10.0);
  EXPECT_FALSE(sm.visible({0, 5}));  // straight through the square
  EXPECT_TRUE(sm.visible({0, -5}));  // away from it
}

}  // namespace
}  // namespace hipo::discretize
