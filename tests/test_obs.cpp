// hipo::obs — metrics registry semantics (sharded aggregation, kind safety,
// histogram bucket boundaries, reset), trace JSON well-formedness, and the
// build-info provenance stamp.
#include "src/obs/obs.hpp"

#include "src/obs/json.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/util/error.hpp"

namespace hipo::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON well-formedness checker (strings, numbers, literals, arrays,
// objects). Strict enough to catch unescaped quotes, trailing commas, and
// unbalanced nesting in the emitted documents.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

bool json_valid(const std::string& text) { return JsonChecker(text).valid(); }

TEST(JsonChecker, SelfTest) {
  EXPECT_TRUE(json_valid(R"({"a":[1,2.5,-3e-4],"b":{"c":"x\"y"},"d":null})"));
  EXPECT_FALSE(json_valid(R"({"a":1,})"));
  EXPECT_FALSE(json_valid(R"({"a":1)"));
  EXPECT_FALSE(json_valid(R"({"a" 1})"));
}

// json_double feeds every hand-rolled emitter (metrics, trace, bench, the
// serve wire). NaN/Inf have no JSON number form; they must come out as
// `null` — never as bare nan/inf (invalid JSON) and never as a fabricated
// finite value.
TEST(JsonDouble, NonFiniteBecomesNull) {
  EXPECT_EQ(json_double(std::nan("")), "null");
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_double(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_double(0.0), "0");
  EXPECT_EQ(json_double(1.5), "1.5");
}

TEST(JsonDouble, NonFiniteMetricsStillEmitValidJson) {
  reset_metrics();
  set_metrics_enabled(true);
  gauge("test.poisoned_gauge").set(std::nan(""));
  accum("test.poisoned_accum").add(std::numeric_limits<double>::infinity());
  const std::string json = metrics_json(metrics_snapshot());
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"test.poisoned_gauge\":null"), std::string::npos)
      << json;
  reset_metrics();
}

// ---------------------------------------------------------------------------

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_metrics();
    reset_trace();
    set_metrics_enabled(true);
  }
  void TearDown() override {
    set_metrics_enabled(false);
    set_trace_enabled(false);
    reset_trace();
    reset_metrics();
  }
};

TEST_F(ObsTest, DisabledCounterIsNoop) {
  set_metrics_enabled(false);
  auto& c = counter("test.disabled_counter");
  c.add(5);
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, CounterAggregatesAcrossThreads) {
  auto& c = counter("test.threaded_counter");
  constexpr int kThreads = 4;
  constexpr int kAdds = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST_F(ObsTest, RegistrationIsFindOrCreate) {
  EXPECT_EQ(&counter("test.same_name"), &counter("test.same_name"));
}

TEST_F(ObsTest, KindMismatchThrows) {
  counter("test.kind_clash");
  EXPECT_THROW(gauge("test.kind_clash"), InvariantError);
  constexpr double kBounds[] = {1.0};
  EXPECT_THROW(histogram("test.kind_clash", kBounds), InvariantError);
}

TEST_F(ObsTest, GaugeLastWriteWins) {
  auto& g = gauge("test.gauge");
  g.set(1.5);
  g.set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
}

TEST_F(ObsTest, AccumSumsAndCounts) {
  auto& a = accum("test.accum");
  a.add(1.5);
  a.add(2.5);
  a.add(-1.0);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 3.0);
}

TEST_F(ObsTest, HistogramBucketBoundariesAreUpperInclusive) {
  constexpr double kBounds[] = {1.0, 2.0, 4.0};
  auto& h = histogram("test.histogram_bounds", kBounds);
  h.observe(0.5);  // below first bound -> bucket 0
  h.observe(1.0);  // exactly on a bound -> that bound's bucket
  h.observe(1.5);
  h.observe(2.0);  // exactly on a bound -> bucket 1, not 2
  h.observe(4.0);
  h.observe(4.00001);  // past the last bound -> overflow
  h.observe(100.0);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 2u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.00001 + 100.0);
}

TEST_F(ObsTest, HistogramReregistrationRequiresSameBounds) {
  constexpr double kBounds[] = {1.0, 2.0};
  constexpr double kOther[] = {1.0, 3.0};
  auto& h = histogram("test.histogram_rereg", kBounds);
  EXPECT_EQ(&histogram("test.histogram_rereg", kBounds), &h);
  EXPECT_THROW(histogram("test.histogram_rereg", kOther), InvariantError);
}

TEST_F(ObsTest, ResetZeroesEverythingButKeepsHandles) {
  auto& c = counter("test.reset_counter");
  auto& g = gauge("test.reset_gauge");
  auto& a = accum("test.reset_accum");
  c.add(7);
  g.set(9.0);
  a.add(2.0);
  reset_metrics();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.sum(), 0.0);
  c.add(1);  // handle still live after reset
  EXPECT_EQ(c.value(), 1u);
}

TEST_F(ObsTest, ScopedPhaseRecordsWallTime) {
  { ScopedPhase phase("test_phase"); }
  { ScopedPhase phase("test_phase"); }
  auto& a = accum("phase.test_phase.seconds");
  EXPECT_EQ(a.count(), 2u);
  EXPECT_GE(a.sum(), 0.0);
}

TEST_F(ObsTest, SnapshotIsNameSortedAndJsonWellFormed) {
  counter("test.z_counter").add(2);
  counter("test.a_counter").add(1);
  gauge("test.gauge_json").set(0.5);
  constexpr double kBounds[] = {1.0, 2.0};
  histogram("test.histogram_json", kBounds).observe(1.5);
  accum("test.accum_json").add(0.25);
  const auto snapshot = metrics_snapshot();
  for (std::size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].name, snapshot.counters[i].name);
  }
  const std::string json = metrics_json(snapshot);
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"test.a_counter\":1"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"accums\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);

  std::ostringstream full;
  write_metrics_json(snapshot, full);
  EXPECT_TRUE(json_valid(full.str())) << full.str();
  EXPECT_NE(full.str().find("\"schema\":\"hipo-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(full.str().find("\"build\""), std::string::npos);
}

TEST_F(ObsTest, DisabledSpansEmitNothing) {
  { Span span("test.disabled_span"); }
  std::ostringstream os;
  write_trace_json(os);
  EXPECT_EQ(os.str().find("test.disabled_span"), std::string::npos);
  EXPECT_TRUE(json_valid(os.str())) << os.str();
}

TEST_F(ObsTest, TraceJsonIsWellFormedAndCarriesSpans) {
  set_trace_enabled(true);
  {
    Span outer("test.outer");
    { Span inner("test.inner", std::uint64_t{42}); }
    std::thread worker([] { Span span("test.worker", "w1"); });
    worker.join();
  }
  set_trace_enabled(false);
  std::ostringstream os;
  write_trace_json(os);
  const std::string text = os.str();
  EXPECT_TRUE(json_valid(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(text.find("\"test.inner\""), std::string::npos);
  EXPECT_NE(text.find("\"test.worker\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
}

TEST_F(ObsTest, SpanFinishReturnsDuration) {
  set_trace_enabled(true);
  Span span("test.finish");
  const double seconds = span.finish();
  EXPECT_GE(seconds, 0.0);
  // Finishing made the span inactive; destruction must not double-emit.
  set_trace_enabled(false);
  Span off("test.finish_disabled");
  EXPECT_EQ(off.finish(), 0.0);
}

TEST_F(ObsTest, StopwatchAdvances) {
  Stopwatch watch;
  EXPECT_GE(watch.seconds(), 0.0);
  watch.reset();
  EXPECT_GE(watch.millis(), 0.0);
}

TEST(BuildInfo, FieldsPopulatedAndJsonWellFormed) {
  const BuildInfo& info = build_info();
  EXPECT_FALSE(info.git_describe.empty());
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_EQ(info.schema_version, kSchemaVersion);
  EXPECT_GE(info.hardware_threads, 1u);
  const std::string json = build_info_json();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"git\""), std::string::npos);
  EXPECT_NE(json.find("\"compiler\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
}

}  // namespace
}  // namespace hipo::obs
