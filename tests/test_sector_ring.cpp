#include "src/geometry/sector_ring.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace hipo::geom {
namespace {

TEST(SectorRing, ValidatesParameters) {
  EXPECT_THROW(SectorRing({0, 0}, 0.0, 0.0, 1.0, 2.0), hipo::ConfigError);
  EXPECT_THROW(SectorRing({0, 0}, 0.0, 1.0, 2.0, 1.0), hipo::ConfigError);
  EXPECT_THROW(SectorRing({0, 0}, 0.0, 1.0, -1.0, 1.0), hipo::ConfigError);
}

TEST(SectorRing, ContainsRespectsRadii) {
  const SectorRing ring({0, 0}, 0.0, kPi, 1.0, 2.0);
  EXPECT_FALSE(ring.contains({0.5, 0.0}));  // too close
  EXPECT_TRUE(ring.contains({1.5, 0.0}));
  EXPECT_FALSE(ring.contains({2.5, 0.0}));  // too far
  EXPECT_TRUE(ring.contains({1.0, 0.0}));   // inner boundary inclusive
  EXPECT_TRUE(ring.contains({2.0, 0.0}));   // outer boundary inclusive
}

TEST(SectorRing, ContainsRespectsAngle) {
  const SectorRing ring({0, 0}, 0.0, kPi / 2.0, 0.5, 2.0);
  EXPECT_TRUE(ring.contains({1.0, 0.0}));
  EXPECT_TRUE(ring.contains(unit_vector(kPi / 4.0) * 1.0));    // boundary ray
  EXPECT_FALSE(ring.contains(unit_vector(kPi / 3.0) * 1.0));   // beyond
  EXPECT_FALSE(ring.contains({-1.0, 0.0}));                    // behind
}

TEST(SectorRing, FullCircleIgnoresOrientation) {
  const SectorRing ring({0, 0}, 1.234, kTwoPi, 1.0, 2.0);
  for (double a = 0.0; a < kTwoPi; a += 0.37) {
    EXPECT_TRUE(ring.contains(unit_vector(a) * 1.5));
  }
}

TEST(SectorRing, Area) {
  const SectorRing ring({0, 0}, 0.0, kPi, 1.0, 2.0);
  EXPECT_NEAR(ring.area(), 0.5 * kPi * (4.0 - 1.0), 1e-12);
  const SectorRing disk({0, 0}, 0.0, kTwoPi, 0.0, 1.0);
  EXPECT_NEAR(disk.area(), kPi, 1e-9);
}

TEST(SectorRing, CoveringOrientationsWidthEqualsAngle) {
  const SectorRing ring({0, 0}, 0.0, kPi / 3.0, 1.0, 5.0);
  const auto iv = ring.covering_orientations({2.0, 0.0});
  EXPECT_NEAR(iv.width, kPi / 3.0, 1e-12);
  EXPECT_TRUE(iv.contains(0.0));
}

// Property: for points within ring distance,
//   contains(p) under orientation φ  ⟺  covering_orientations(p) ∋ φ.
class CoveringDualityTest : public ::testing::TestWithParam<int> {};

TEST_P(CoveringDualityTest, ContainsIffOrientationCovered) {
  hipo::Rng rng(static_cast<std::uint64_t>(GetParam()) * 311 + 1);
  for (int i = 0; i < 400; ++i) {
    const Vec2 apex{rng.uniform(-2, 2), rng.uniform(-2, 2)};
    const double alpha = rng.uniform(0.2, kTwoPi - 0.1);
    const double r_min = rng.uniform(0.1, 1.0);
    const double r_max = r_min + rng.uniform(0.5, 2.0);
    const double phi = rng.angle();
    const SectorRing ring(apex, phi, alpha, r_min, r_max);

    const double r = rng.uniform(r_min + 1e-3, r_max - 1e-3);
    const Vec2 p = apex + unit_vector(rng.angle()) * r;
    const auto iv = ring.covering_orientations(p);
    // Skip boundary-ambiguous probes.
    const double bearing = (p - apex).angle();
    const double dev = angle_distance(bearing, phi);
    if (std::abs(dev - alpha / 2.0) < 1e-6) continue;
    EXPECT_EQ(ring.contains(p), iv.contains(phi))
        << "apex=" << apex << " p=" << p << " alpha=" << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, CoveringDualityTest, ::testing::Range(0, 12));

TEST(SectorRing, ApexNotContainedUnlessZeroRMin) {
  const SectorRing ring({1, 1}, 0.0, kPi, 0.5, 2.0);
  EXPECT_FALSE(ring.contains({1, 1}));
}

TEST(SectorRing, DminZeroContainsApexForAnySectorAngle) {
  // r_min = 0 degenerates the ring to a disk sector; the apex is a member
  // regardless of how narrow the sector is (the angular condition is
  // vacuous at zero distance — a co-located charger/device pair).
  const SectorRing disk({3, 4}, 0.7, kPi / 6.0, 0.0, 2.0);
  EXPECT_TRUE(disk.contains({3, 4}));
  EXPECT_TRUE(disk.covering_orientations({3, 4}).is_full());
}

TEST(SectorRing, FullAngleBoundariesInclusive) {
  // α = 2π with r_min = 0: the sector ring is a closed disk; membership
  // must not depend on where the orientation seam lands and the outer
  // boundary is inclusive in every direction.
  const SectorRing disk({0, 0}, 2.5, kTwoPi, 0.0, 1.5);
  for (double a = 0.0; a < kTwoPi; a += 0.31) {
    EXPECT_TRUE(disk.contains(unit_vector(a) * 1.5));
    EXPECT_TRUE(disk.contains(unit_vector(a) * 0.01));
  }
  EXPECT_TRUE(disk.contains({0, 0}));
}

}  // namespace
}  // namespace hipo::geom
