#include "src/model/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/geometry/angles.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::model {
namespace {

using geom::kPi;
using geom::kTwoPi;
using geom::Vec2;

TEST(ScenarioConfig, ValidatesTables) {
  auto cfg = test::simple_config();
  cfg.pair_params.clear();
  EXPECT_THROW(Scenario(std::move(cfg)), hipo::ConfigError);

  cfg = test::simple_config();
  cfg.charger_counts = {1, 2};
  EXPECT_THROW(Scenario(std::move(cfg)), hipo::ConfigError);

  cfg = test::simple_config();
  cfg.charger_types[0].d_min = 7.0;  // > d_max
  EXPECT_THROW(Scenario(std::move(cfg)), hipo::ConfigError);
}

TEST(ScenarioConfig, RejectsDeviceInsideObstacle) {
  auto cfg = test::simple_config();
  cfg.obstacles = {geom::make_rect({9, 9}, {11, 11})};
  cfg.devices = {test::device_at(10, 10)};
  EXPECT_THROW(Scenario(std::move(cfg)), hipo::ConfigError);
}

TEST(ScenarioConfig, RejectsDeviceOutsideRegion) {
  auto cfg = test::simple_config();
  cfg.devices = {test::device_at(25, 10)};
  EXPECT_THROW(Scenario(std::move(cfg)), hipo::ConfigError);
}

TEST(Scenario, NumChargers) {
  const auto s = test::simple_scenario();
  EXPECT_EQ(s.num_chargers(), 2u);
  EXPECT_EQ(s.num_charger_types(), 1u);
  EXPECT_EQ(s.num_devices(), 3u);
}

TEST(Scenario, PowerDistanceGates) {
  const auto s = test::simple_scenario();
  // Device 0 at (10,10); charger type: d ∈ [1, 5], α = π/2.
  const Strategy too_close{{10.5, 10.0}, kPi, 0};  // d = 0.5 < 1
  EXPECT_DOUBLE_EQ(s.exact_power(too_close, 0), 0.0);
  const Strategy too_far{{16.0, 10.0}, kPi, 0};  // d = 6 > 5
  EXPECT_DOUBLE_EQ(s.exact_power(too_far, 0), 0.0);
  const Strategy in_range{{13.0, 10.0}, kPi, 0};  // d = 3, facing device
  EXPECT_NEAR(s.exact_power(in_range, 0), 100.0 / (43.0 * 43.0), 1e-12);
}

TEST(Scenario, PowerChargerAngleGate) {
  const auto s = test::simple_scenario();
  // Charger east of device, facing AWAY (east): device outside sector.
  const Strategy facing_away{{13.0, 10.0}, 0.0, 0};
  EXPECT_DOUBLE_EQ(s.exact_power(facing_away, 0), 0.0);
  // Facing at the sector half-angle boundary (π ± π/4): still covered.
  const Strategy boundary{{13.0, 10.0}, kPi - kPi / 4.0 + 1e-9, 0};
  EXPECT_GT(s.exact_power(boundary, 0), 0.0);
}

TEST(Scenario, PowerDeviceAngleGate) {
  auto cfg = test::simple_config();
  cfg.device_types = {{kPi / 2.0}};  // narrow receiver
  cfg.devices = {test::device_at(10, 10, /*orientation=*/0.0)};
  const Scenario s(std::move(cfg));
  // Charger east of device (within receiving sector pointing east): covered.
  const Strategy east{{13.0, 10.0}, kPi, 0};
  EXPECT_GT(s.exact_power(east, 0), 0.0);
  // Charger west of device: outside the π/2 receiving sector.
  const Strategy west{{7.0, 10.0}, 0.0, 0};
  EXPECT_DOUBLE_EQ(s.exact_power(west, 0), 0.0);
}

TEST(Scenario, PowerBlockedByObstacle) {
  const auto s = test::blocked_scenario();
  // Charger east of the obstacle: line of sight crosses the rect.
  const Strategy blocked{{13.0, 10.0}, kPi, 0};
  EXPECT_DOUBLE_EQ(s.exact_power(blocked, 0), 0.0);
  EXPECT_FALSE(s.covers(blocked, 0));
  // Charger north: clear.
  const Strategy clear{{10.0, 13.0}, -kPi / 2.0, 0};
  EXPECT_GT(s.exact_power(clear, 0), 0.0);
}

TEST(Scenario, LineOfSight) {
  const auto s = test::blocked_scenario();
  EXPECT_FALSE(s.line_of_sight({10, 10}, {13, 10}));
  EXPECT_TRUE(s.line_of_sight({10, 10}, {10, 13}));
}

TEST(Scenario, PositionFeasible) {
  const auto s = test::blocked_scenario();
  EXPECT_TRUE(s.position_feasible({5, 5}));
  EXPECT_FALSE(s.position_feasible({11.5, 10.0}));  // inside obstacle
  EXPECT_FALSE(s.position_feasible({11.0, 10.0}));  // on obstacle boundary
  EXPECT_FALSE(s.position_feasible({25, 5}));       // outside region
}

TEST(Scenario, AdditivePower) {
  const auto s = test::simple_scenario();
  const Strategy a{{13.0, 10.0}, kPi, 0};
  const Strategy b{{7.0, 10.0}, 0.0, 0};
  const Placement both{a, b};
  EXPECT_NEAR(s.total_exact_power(both, 0),
              s.exact_power(a, 0) + s.exact_power(b, 0), 1e-12);
}

TEST(Scenario, UtilitySaturation) {
  const auto s = test::simple_scenario();
  EXPECT_DOUBLE_EQ(s.utility(0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.utility(0, 0.025), 0.5);
  EXPECT_DOUBLE_EQ(s.utility(0, 0.05), 1.0);
  EXPECT_DOUBLE_EQ(s.utility(0, 0.5), 1.0);
}

TEST(Scenario, PlacementUtilityNormalized) {
  const auto s = test::simple_scenario();
  const Placement p{Strategy{{13.0, 10.0}, kPi, 0}};
  const auto per_dev = s.per_device_utility(p);
  ASSERT_EQ(per_dev.size(), 3u);
  double sum = 0.0;
  for (double u : per_dev) sum += u;
  EXPECT_NEAR(s.placement_utility(p), sum / 3.0, 1e-12);
}

TEST(Scenario, ApproxPowerMatchesRingGating) {
  const auto s = test::simple_scenario();
  const Strategy strat{{13.0, 10.0}, kPi, 0};
  const auto& lad = s.ladder(0, 0);
  EXPECT_NEAR(s.approx_power(strat, 0), lad.approx_power(3.0), 1e-12);
  // Blocked / out-of-range strategies approximate to zero too.
  const Strategy far{{16.0, 10.0}, kPi, 0};
  EXPECT_DOUBLE_EQ(s.approx_power(far, 0), 0.0);
}

// Lemma 4.2 property: 1 <= P/P̃ <= 1+ε₁ whenever P > 0, for random
// strategies on a random scenario.
class Lemma42Test : public ::testing::TestWithParam<int> {};

TEST_P(Lemma42Test, ApproxRatioWithinEps1) {
  const auto s = test::small_paper_scenario(
      static_cast<std::uint64_t>(GetParam()) + 100);
  hipo::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 1);
  int checked = 0;
  for (int i = 0; i < 3000 && checked < 200; ++i) {
    const Strategy strat{
        {rng.uniform(0, 40), rng.uniform(0, 40)},
        rng.angle(),
        rng.below(s.num_charger_types())};
    for (std::size_t j = 0; j < s.num_devices(); ++j) {
      const double exact = s.exact_power(strat, j);
      const double approx = s.approx_power(strat, j);
      if (exact <= 0.0) {
        EXPECT_DOUBLE_EQ(approx, 0.0);
        continue;
      }
      ++checked;
      ASSERT_GT(approx, 0.0);
      const double ratio = exact / approx;
      EXPECT_GE(ratio, 1.0 - 1e-6);
      EXPECT_LE(ratio, 1.0 + s.eps1() + 1e-6);
    }
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Random, Lemma42Test, ::testing::Range(0, 8));

TEST(Scenario, ValidatePlacementBudget) {
  const auto s = test::simple_scenario();
  Placement ok{Strategy{{5, 5}, 0.0, 0}, Strategy{{6, 6}, 0.0, 0}};
  EXPECT_NO_THROW(s.validate_placement(ok));
  Placement over{Strategy{{5, 5}, 0.0, 0}, Strategy{{6, 6}, 0.0, 0},
                 Strategy{{7, 7}, 0.0, 0}};
  EXPECT_THROW(s.validate_placement(over), hipo::ConfigError);
}

TEST(Scenario, ValidatePlacementPosition) {
  const auto s = test::blocked_scenario();
  Placement bad{Strategy{{11.5, 10.0}, 0.0, 0}};
  EXPECT_THROW(s.validate_placement(bad), hipo::ConfigError);
}

TEST(Scenario, CoincidentChargerDeviceNotCovered) {
  auto cfg = test::simple_config();
  cfg.charger_types[0].d_min = 0.0;
  cfg.devices = {test::device_at(10, 10)};
  const Scenario s(std::move(cfg));
  const Strategy on_top{{10.0, 10.0}, 0.0, 0};
  EXPECT_DOUBLE_EQ(s.exact_power(on_top, 0), 0.0);
}

}  // namespace
}  // namespace hipo::model
