#include "src/baselines/baselines.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::baselines {
namespace {

TEST(GridPoints, SquareSpacing) {
  const auto s = test::simple_scenario();
  const auto pts = grid_points(s, 0, GridKind::kSquare);
  ASSERT_FALSE(pts.empty());
  const double g = std::sqrt(2.0) / 2.0 * s.charger_type(0).d_max;
  // First two points in a row differ by the grid pitch.
  bool found_pitch = false;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (std::abs(pts[i].y - pts[0].y) < 1e-9 &&
        std::abs(pts[i].x - pts[0].x - g) < 1e-9) {
      found_pitch = true;
      break;
    }
  }
  EXPECT_TRUE(found_pitch);
  for (const auto& p : pts) EXPECT_TRUE(s.position_feasible(p));
}

TEST(GridPoints, TriangleAlternatesOffset) {
  const auto s = test::simple_scenario();
  const auto pts = grid_points(s, 0, GridKind::kTriangle);
  ASSERT_FALSE(pts.empty());
  for (const auto& p : pts) EXPECT_TRUE(s.position_feasible(p));
  // Triangular lattice has more rows (row height g·√3/2 < g).
  const auto sq = grid_points(s, 0, GridKind::kSquare);
  EXPECT_GT(pts.size(), sq.size());
}

TEST(GridPoints, ExcludesObstacleInterior) {
  const auto s = test::blocked_scenario();
  for (auto kind : {GridKind::kSquare, GridKind::kTriangle}) {
    for (const auto& p : grid_points(s, 0, kind)) {
      for (const auto& h : s.obstacles()) {
        EXPECT_FALSE(h.contains(p));
      }
    }
  }
}

class BaselineContractTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BaselineContractTest, PlacementContract) {
  const auto algorithms = comparison_algorithms();
  ASSERT_EQ(algorithms.size(), 8u);
  const auto& alg = algorithms[GetParam()];
  const auto s = test::small_paper_scenario(77, 2, 1);
  hipo::Rng rng(13);
  const auto placement = alg.run(s, rng);
  // Full budget deployed, every strategy valid.
  EXPECT_EQ(placement.size(), s.num_chargers());
  s.validate_placement(placement);
  std::vector<int> per_type(s.num_charger_types(), 0);
  for (const auto& strat : placement) ++per_type[strat.type];
  for (std::size_t q = 0; q < per_type.size(); ++q) {
    EXPECT_EQ(per_type[q], s.charger_count(q));
  }
  const double u = s.placement_utility(placement);
  EXPECT_GE(u, 0.0);
  EXPECT_LE(u, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllEight, BaselineContractTest,
                         ::testing::Range(std::size_t{0}, std::size_t{8}));

TEST(Baselines, DeterministicGivenSeed) {
  const auto s = test::small_paper_scenario(78, 2, 1);
  for (const auto& alg : comparison_algorithms()) {
    hipo::Rng r1(99), r2(99);
    const auto p1 = alg.run(s, r1);
    const auto p2 = alg.run(s, r2);
    ASSERT_EQ(p1.size(), p2.size());
    for (std::size_t i = 0; i < p1.size(); ++i) {
      EXPECT_EQ(p1[i].pos, p2[i].pos) << alg.name;
      EXPECT_EQ(p1[i].orientation, p2[i].orientation) << alg.name;
    }
  }
}

TEST(Baselines, OrientationOptimizationHelps) {
  // Averaged over seeds, RPAD (enumerated orientations) beats RPAR (random
  // orientations) and GPAD beats GPAR.
  const auto s = test::small_paper_scenario(79, 3, 2);
  double rpar = 0.0, rpad = 0.0, gpar = 0.0, gpad = 0.0;
  const int reps = 10;
  for (int rep = 0; rep < reps; ++rep) {
    hipo::Rng r1(rep), r2(rep), r3(rep), r4(rep);
    rpar += s.placement_utility(place_rpar(s, r1));
    rpad += s.placement_utility(place_rpad(s, r2));
    gpar += s.placement_utility(place_gpar(s, GridKind::kSquare, r3));
    gpad += s.placement_utility(place_gpad(s, GridKind::kSquare, r4));
  }
  EXPECT_GT(rpad, rpar);
  EXPECT_GT(gpad, gpar);
}

TEST(Baselines, GppdcsAtLeastAsGoodAsGpadOnAverage) {
  const auto s = test::small_paper_scenario(80, 3, 2);
  double gpad = 0.0, gppdcs = 0.0;
  const int reps = 8;
  for (int rep = 0; rep < reps; ++rep) {
    hipo::Rng r1(rep + 100), r2(rep + 100);
    gpad += s.placement_utility(place_gpad(s, GridKind::kTriangle, r1));
    gppdcs += s.placement_utility(place_gppdcs(s, GridKind::kTriangle, r2));
  }
  // GPPDCS explores the PDCS critical orientations, a superset in quality;
  // allow a small slack for the discrete-enumeration lucky cases.
  EXPECT_GT(gppdcs, 0.9 * gpad);
}

TEST(Baselines, NamesInPaperOrder) {
  const auto algorithms = comparison_algorithms();
  EXPECT_EQ(algorithms[0].name, "GPPDCS Triangle");
  EXPECT_EQ(algorithms[1].name, "GPPDCS Square");
  EXPECT_EQ(algorithms[2].name, "GPAD Triangle");
  EXPECT_EQ(algorithms[3].name, "GPAD Square");
  EXPECT_EQ(algorithms[4].name, "GPAR Triangle");
  EXPECT_EQ(algorithms[5].name, "GPAR Square");
  EXPECT_EQ(algorithms[6].name, "RPAD");
  EXPECT_EQ(algorithms[7].name, "RPAR");
}

}  // namespace
}  // namespace hipo::baselines
