#include "src/pdcs/point_case.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/geometry/angles.hpp"
#include "src/util/rng.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::pdcs {
namespace {

using geom::kPi;
using geom::kTwoPi;
using geom::Vec2;

std::vector<std::size_t> all_devices(const model::Scenario& s) {
  std::vector<std::size_t> v(s.num_devices());
  for (std::size_t j = 0; j < v.size(); ++j) v[j] = j;
  return v;
}

TEST(OrientableCovers, FiltersByDistanceAndReceiver) {
  auto cfg = test::simple_config();
  cfg.device_types = {{kPi / 2.0}};
  cfg.devices = {
      test::device_at(10, 10, 0.0),   // faces east → charger east covers it
      test::device_at(10, 14, 0.0),   // charger at (13,10) is ~SE of it
      test::device_at(18, 10, kPi),   // too far from (13,10)? d=5 exactly
  };
  const model::Scenario s(std::move(cfg));
  const auto pool = all_devices(s);
  const auto cov = orientable_covers(s, 0, {13.0, 10.0}, pool);
  // Device 0: east of it, in its sector, d=3 → coverable.
  EXPECT_TRUE(std::find(cov.begin(), cov.end(), 0u) != cov.end());
  // Device 1 at (10,14): bearing from device to charger ≈ -53° off east;
  // its receiving half-angle is 45° → not coverable.
  EXPECT_TRUE(std::find(cov.begin(), cov.end(), 1u) == cov.end());
  // Device 2 at (18,10) faces west, charger at d=5 (boundary) → coverable.
  EXPECT_TRUE(std::find(cov.begin(), cov.end(), 2u) != cov.end());
}

TEST(PointCase, InfeasiblePositionYieldsNothing) {
  const auto s = test::blocked_scenario();
  const auto pool = all_devices(s);
  // Inside the obstacle.
  EXPECT_TRUE(extract_point_case(s, 0, {11.5, 10.0}, pool).empty());
  // Outside the region.
  EXPECT_TRUE(extract_point_case(s, 0, {50.0, 50.0}, pool).empty());
}

TEST(PointCase, SingleDeviceSingleCandidate) {
  auto cfg = test::simple_config();
  cfg.devices = {test::device_at(10, 10)};
  const model::Scenario s(std::move(cfg));
  const auto pool = all_devices(s);
  const auto cands = extract_point_case(s, 0, {13.0, 10.0}, pool);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].covered, (std::vector<std::size_t>{0}));
  EXPECT_GT(cands[0].powers[0], 0.0);
  // The strategy actually covers the device under the exact model.
  EXPECT_TRUE(s.covers(cands[0].strategy, 0));
}

TEST(PointCase, ToyRotationalSweep) {
  // Six devices arranged around the origin point, charger angle π/2:
  // the sweep should find maximal groups, none dominated.
  auto cfg = test::simple_config();
  cfg.region.lo = {-10, -10};
  cfg.region.hi = {10, 10};
  const double r = 3.0;
  for (int k = 0; k < 6; ++k) {
    const double a = kTwoPi * k / 6.0;
    cfg.devices.push_back(
        test::device_at(r * std::cos(a), r * std::sin(a)));
  }
  const model::Scenario s(std::move(cfg));
  const auto pool = all_devices(s);
  const auto cands = extract_point_case(s, 0, {0.0, 0.0}, pool);
  ASSERT_FALSE(cands.empty());
  // π/2 sector over devices spaced 60° apart covers at most 2 consecutive.
  for (const auto& c : cands) {
    EXPECT_LE(c.covered.size(), 2u);
    EXPECT_GE(c.covered.size(), 1u);
    for (std::size_t idx = 0; idx < c.covered.size(); ++idx) {
      EXPECT_TRUE(s.covers(c.strategy, c.covered[idx]));
      EXPECT_NEAR(c.powers[idx], s.approx_power(c.strategy, c.covered[idx]),
                  1e-12);
    }
  }
  // All six devices appear in some candidate.
  std::vector<bool> seen(6, false);
  for (const auto& c : cands)
    for (std::size_t j : c.covered) seen[j] = true;
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(PointCase, FullCircleChargerSingleOrientation) {
  auto cfg = test::simple_config();
  cfg.charger_types[0].angle = kTwoPi;
  cfg.devices = {test::device_at(10, 13), test::device_at(13, 10),
                 test::device_at(7, 10)};
  const model::Scenario s(std::move(cfg));
  const auto pool = all_devices(s);
  const auto cands = extract_point_case(s, 0, {10.0, 10.0}, pool);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].covered.size(), 3u);
}

// Property: on random scenarios and random feasible points, every candidate
// is sound (covers what it claims with the claimed approx power), none is
// dominated by a sibling, and the union of maximal sets covers exactly the
// orientable-coverable devices.
class PointCasePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PointCasePropertyTest, SoundMaximalAndComplete) {
  const auto s = test::small_paper_scenario(
      static_cast<std::uint64_t>(GetParam()) + 900, 2, 1);
  hipo::Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 9);
  const auto pool = all_devices(s);
  int tested = 0;
  for (int trial = 0; trial < 200 && tested < 40; ++trial) {
    const Vec2 pos{rng.uniform(0, 40), rng.uniform(0, 40)};
    const std::size_t q = rng.below(s.num_charger_types());
    const auto cands = extract_point_case(s, q, pos, pool);
    if (cands.empty()) continue;
    ++tested;

    std::vector<bool> covered_any(s.num_devices(), false);
    for (const auto& c : cands) {
      EXPECT_EQ(c.strategy.pos, pos);
      EXPECT_EQ(c.strategy.type, q);
      for (std::size_t k = 0; k < c.covered.size(); ++k) {
        EXPECT_GT(c.powers[k], 0.0);
        EXPECT_NEAR(c.powers[k], s.approx_power(c.strategy, c.covered[k]),
                    1e-12);
        covered_any[c.covered[k]] = true;
      }
      for (const auto& other : cands) {
        if (&other == &c) continue;
        EXPECT_FALSE(dominated_by(c, other) && !dominated_by(other, c));
      }
    }
    // Completeness: every orientable-coverable device shows up somewhere.
    for (std::size_t j : orientable_covers(s, q, pos, pool)) {
      EXPECT_TRUE(covered_any[j]) << "device " << j << " missing at " << pos;
    }
  }
  EXPECT_GT(tested, 0);
}

INSTANTIATE_TEST_SUITE_P(Random, PointCasePropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace hipo::pdcs
