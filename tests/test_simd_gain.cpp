// The SIMD gain-kernel layer (src/opt/simd/): dispatch plumbing, bit-level
// parity of every kernel between the scalar and AVX2 variants (including
// tie-breaks, tails, and unaligned [begin, end) windows), the quantization
// invariants the top-k shortlist rests on, dense-vs-pooled argmax
// equivalence, full placement identity across ISA × quantize × greedy mode
// × objective kind × thread count against the legacy engine, and the
// kernel-path observability counters.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/fuzz/generator.hpp"
#include "src/model/scenario.hpp"
#include "src/obs/metrics.hpp"
#include "src/opt/greedy.hpp"
#include "src/opt/objective.hpp"
#include "src/opt/simd/gain_kernels.hpp"
#include "src/parallel/thread_pool.hpp"
#include "src/pdcs/extract.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"
#include "tests/test_helpers.hpp"

namespace hipo {
namespace {

using opt::simd::ArgmaxHit;
using opt::simd::GainKernels;
using opt::simd::Isa;
using opt::simd::kNoIndex;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Restores the dispatched ISA on scope exit, so a failing ASSERT inside a
/// forced-scalar section cannot leak the pin into later tests.
class IsaGuard {
 public:
  IsaGuard() : saved_(opt::simd::active_isa()) {}
  ~IsaGuard() { opt::simd::force_isa(saved_); }
  IsaGuard(const IsaGuard&) = delete;
  IsaGuard& operator=(const IsaGuard&) = delete;

 private:
  Isa saved_;
};

bool have_avx2() {
  return opt::simd::avx2_compiled() && opt::simd::cpu_has_avx2();
}

/// Random row-kernel inputs: `n` coverage entries over `num_devices`
/// devices, with accumulated powers straddling the p_th saturation point so
/// both min() branches are exercised.
struct RowInputs {
  std::vector<std::uint32_t> ids32;
  std::vector<std::size_t> ids64;
  std::vector<double> powers;
  std::vector<double> acc;
  std::vector<double> th;
  std::vector<double> wot;
  std::vector<double> w;
};

RowInputs make_row_inputs(std::size_t n, std::size_t num_devices, Rng& rng) {
  RowInputs in;
  for (std::size_t k = 0; k < n; ++k) {
    const auto j = static_cast<std::uint32_t>(rng.below(num_devices));
    in.ids32.push_back(j);
    in.ids64.push_back(j);
    in.powers.push_back(rng.uniform(0.01, 0.9));
  }
  for (std::size_t j = 0; j < num_devices; ++j) {
    in.acc.push_back(rng.uniform(0.0, 1.5));
    in.th.push_back(rng.uniform(0.5, 2.0));
    in.w.push_back(rng.uniform(0.1, 3.0));
    in.wot.push_back(in.w.back() / in.th.back());
  }
  return in;
}

/// Sequential reference for argmax_f64's contract: strictly largest
/// eligible gain above min_gain, lowest index on exact ties, zero gain when
/// nothing qualifies.
ArgmaxHit ref_argmax(const std::vector<double>& gains,
                     const std::vector<std::uint8_t>& eligible,
                     std::size_t begin, std::size_t end, double min_gain) {
  ArgmaxHit hit;
  hit.gain = min_gain;
  for (std::size_t i = begin; i < end; ++i) {
    if (eligible[i] != 0 && gains[i] > hit.gain) {
      hit.gain = gains[i];
      hit.index = i;
    }
  }
  if (hit.index == kNoIndex) hit.gain = 0.0;
  return hit;
}

ArgmaxHit ref_argmax_where(const std::vector<std::uint16_t>& quant,
                           std::uint16_t qmax,
                           const std::vector<double>& gains, std::size_t begin,
                           std::size_t end, double min_gain,
                           std::uint64_t* rechecks) {
  ArgmaxHit hit;
  hit.gain = min_gain;
  for (std::size_t i = begin; i < end; ++i) {
    if (quant[i] != qmax) continue;
    ++*rechecks;
    if (gains[i] > hit.gain) {
      hit.gain = gains[i];
      hit.index = i;
    }
  }
  if (hit.index == kNoIndex) hit.gain = 0.0;
  return hit;
}

// Sizes chosen to hit every vector-width boundary: empty, sub-width,
// exact multiples of 4 (f64 lanes) and 16 (u16 lanes), and off-by-one
// around both.
const std::size_t kSizes[] = {0, 1, 3, 4, 5, 7, 8, 15, 16, 17, 31, 32, 33, 100};

TEST(SimdDispatch, ScalarAlwaysAvailableAndForceRoundTrips) {
  IsaGuard guard;
  opt::simd::force_isa(Isa::kScalar);
  EXPECT_EQ(opt::simd::active_isa(), Isa::kScalar);
  EXPECT_STREQ(opt::simd::isa_name(Isa::kScalar), "scalar");
  EXPECT_STREQ(opt::simd::isa_name(Isa::kAvx2), "avx2");
  // The scalar table is complete.
  const GainKernels& k = opt::simd::kernels(Isa::kScalar);
  EXPECT_NE(k.row_gain_utility_u32, nullptr);
  EXPECT_NE(k.row_gain_utility_u64, nullptr);
  EXPECT_NE(k.row_gain_log_u32, nullptr);
  EXPECT_NE(k.row_gain_log_u64, nullptr);
  EXPECT_NE(k.argmax_f64, nullptr);
  EXPECT_NE(k.max_u16, nullptr);
  EXPECT_NE(k.argmax_f64_where_u16, nullptr);

  if (have_avx2()) {
    opt::simd::force_isa(Isa::kAvx2);
    EXPECT_EQ(opt::simd::active_isa(), Isa::kAvx2);
  } else if (!opt::simd::avx2_compiled()) {
    EXPECT_THROW(opt::simd::force_isa(Isa::kAvx2), ConfigError);
  }
}

TEST(SimdDispatch, Avx2TableSharesLogKernelsWithScalar) {
  if (!opt::simd::avx2_compiled()) {
    GTEST_SKIP() << "AVX2 kernels not compiled into this build";
  }
  // kLogUtility must be dispatch-invariant by construction: both tables
  // point at the identical (scalar) log kernels.
  const GainKernels& s = opt::simd::kernels(Isa::kScalar);
  const GainKernels& v = opt::simd::kernels(Isa::kAvx2);
  EXPECT_EQ(s.row_gain_log_u32, v.row_gain_log_u32);
  EXPECT_EQ(s.row_gain_log_u64, v.row_gain_log_u64);
  // The vectorized kernels are genuinely different code.
  EXPECT_NE(s.row_gain_utility_u32, v.row_gain_utility_u32);
  EXPECT_NE(s.argmax_f64, v.argmax_f64);
}

TEST(KernelParity, RowGainBitIdenticalScalarVsAvx2) {
  if (!have_avx2()) GTEST_SKIP() << "AVX2 unavailable";
  const GainKernels& s = opt::simd::kernels(Isa::kScalar);
  const GainKernels& v = opt::simd::kernels(Isa::kAvx2);
  Rng rng(2024);
  for (const std::size_t n : kSizes) {
    for (int trial = 0; trial < 8; ++trial) {
      const auto in = make_row_inputs(n, 64, rng);
      const double s32 =
          s.row_gain_utility_u32(in.ids32.data(), in.powers.data(), n,
                                 in.acc.data(), in.th.data(), in.wot.data());
      const double v32 =
          v.row_gain_utility_u32(in.ids32.data(), in.powers.data(), n,
                                 in.acc.data(), in.th.data(), in.wot.data());
      EXPECT_EQ(bits(s32), bits(v32)) << "u32 n=" << n << " trial " << trial;
      const double s64 =
          s.row_gain_utility_u64(in.ids64.data(), in.powers.data(), n,
                                 in.acc.data(), in.th.data(), in.wot.data());
      const double v64 =
          v.row_gain_utility_u64(in.ids64.data(), in.powers.data(), n,
                                 in.acc.data(), in.th.data(), in.wot.data());
      EXPECT_EQ(bits(s64), bits(v64)) << "u64 n=" << n << " trial " << trial;
      // The two id widths address identical devices, so the sums agree.
      EXPECT_EQ(bits(s32), bits(s64)) << "n=" << n << " trial " << trial;
    }
  }
}

TEST(KernelParity, ArgmaxMatchesSequentialReference) {
  const GainKernels& s = opt::simd::kernels(Isa::kScalar);
  const GainKernels* v = have_avx2() ? &opt::simd::kernels(Isa::kAvx2) : nullptr;
  Rng rng(7);
  constexpr double kMin = 1e-15;
  for (const std::size_t n : kSizes) {
    for (int trial = 0; trial < 16; ++trial) {
      std::vector<double> gains(n);
      std::vector<std::uint8_t> eligible(n);
      for (std::size_t i = 0; i < n; ++i) {
        // Draw from 5 discrete levels (including 0 and an exact duplicate
        // band) so exact ties across indices are common, plus a
        // sub-threshold value that must never win.
        const std::size_t level = rng.below(5);
        const double levels[] = {0.0, 1e-16, 0.25, 0.5, 0.5};
        gains[i] = levels[level];
        eligible[i] = rng.below(4) != 0 ? 1 : 0;
      }
      // Unaligned windows too, not just [0, n).
      const std::size_t begin = n > 2 ? rng.below(n / 2) : 0;
      const std::size_t end = n;
      const ArgmaxHit want = ref_argmax(gains, eligible, begin, end, kMin);
      const ArgmaxHit got =
          s.argmax_f64(gains.data(), eligible.data(), begin, end, kMin);
      EXPECT_EQ(got.index, want.index) << "scalar n=" << n << " t" << trial;
      EXPECT_EQ(bits(got.gain), bits(want.gain))
          << "scalar n=" << n << " t" << trial;
      if (v != nullptr) {
        const ArgmaxHit vec =
            v->argmax_f64(gains.data(), eligible.data(), begin, end, kMin);
        EXPECT_EQ(vec.index, want.index) << "avx2 n=" << n << " t" << trial;
        EXPECT_EQ(bits(vec.gain), bits(want.gain))
            << "avx2 n=" << n << " t" << trial;
      }
    }
  }
}

TEST(KernelParity, MaxU16AndShortlistRecheck) {
  const GainKernels& s = opt::simd::kernels(Isa::kScalar);
  const GainKernels* v = have_avx2() ? &opt::simd::kernels(Isa::kAvx2) : nullptr;
  Rng rng(99);
  constexpr double kMin = 1e-15;
  for (const std::size_t n : kSizes) {
    for (int trial = 0; trial < 16; ++trial) {
      std::vector<std::uint16_t> quant(n);
      std::vector<double> gains(n);
      bool all_zero = trial == 0;  // exercise the "nothing selectable" lane
      for (std::size_t i = 0; i < n; ++i) {
        quant[i] = all_zero ? 0 : static_cast<std::uint16_t>(rng.below(4));
        // Exact gain consistent with the quantized image: strictly positive
        // iff quant is nonzero, with deliberate exact ties.
        gains[i] = quant[i] == 0 ? 0.0 : 0.125 * quant[i];
      }
      const std::size_t begin = n > 2 ? rng.below(n / 2) : 0;
      const std::size_t end = n;

      std::uint16_t ref_max = 0;
      for (std::size_t i = begin; i < end; ++i) {
        if (quant[i] > ref_max) ref_max = quant[i];
      }
      EXPECT_EQ(s.max_u16(quant.data(), begin, end), ref_max) << "n=" << n;
      if (v != nullptr) {
        EXPECT_EQ(v->max_u16(quant.data(), begin, end), ref_max) << "n=" << n;
      }
      if (ref_max == 0) continue;

      std::uint64_t want_rechecks = 0;
      const ArgmaxHit want = ref_argmax_where(quant, ref_max, gains, begin,
                                              end, kMin, &want_rechecks);
      std::uint64_t got_rechecks = 0;
      const ArgmaxHit got =
          s.argmax_f64_where_u16(quant.data(), ref_max, gains.data(), begin,
                                 end, kMin, &got_rechecks);
      EXPECT_EQ(got.index, want.index) << "scalar n=" << n << " t" << trial;
      EXPECT_EQ(bits(got.gain), bits(want.gain)) << "scalar n=" << n;
      EXPECT_EQ(got_rechecks, want_rechecks) << "scalar n=" << n;
      if (v != nullptr) {
        std::uint64_t vec_rechecks = 0;
        const ArgmaxHit vec =
            v->argmax_f64_where_u16(quant.data(), ref_max, gains.data(),
                                    begin, end, kMin, &vec_rechecks);
        EXPECT_EQ(vec.index, want.index) << "avx2 n=" << n << " t" << trial;
        EXPECT_EQ(bits(vec.gain), bits(want.gain)) << "avx2 n=" << n;
        EXPECT_EQ(vec_rechecks, want_rechecks) << "avx2 n=" << n;
      }
    }
  }
}

TEST(QuantizeGain, ZeroIffBelowThresholdAndMonotone) {
  constexpr double kMin = 1e-15;
  // Zero exactly when the positivity test fails — the property that makes
  // "lane max == 0" equivalent to "no selectable candidate".
  EXPECT_EQ(opt::simd::quantize_gain(0.0, kMin), 0);
  EXPECT_EQ(opt::simd::quantize_gain(-1.0, kMin), 0);
  EXPECT_EQ(opt::simd::quantize_gain(kMin, kMin), 0);  // not strictly above
  EXPECT_GE(opt::simd::quantize_gain(1e-14, kMin), 1);
  // Saturation and the upper edge.
  EXPECT_EQ(opt::simd::quantize_gain(1.0, kMin), 65535);
  EXPECT_EQ(opt::simd::quantize_gain(2.0, kMin), 65535);
  EXPECT_EQ(opt::simd::quantize_gain(0.9999999, kMin), 65535);
  // Monotone over a dense sweep (the superset-shortlist argument needs
  // nothing stronger than non-decreasing).
  std::uint16_t prev = 0;
  for (int i = 0; i <= 10000; ++i) {
    const double g = static_cast<double>(i) / 10000.0;
    const std::uint16_t q = opt::simd::quantize_gain(g, kMin);
    EXPECT_GE(q, prev) << "g=" << g;
    prev = q;
  }
  // ceil: a gain strictly inside a bucket rounds up, never down to a
  // bucket whose exact members it could then shadow.
  EXPECT_EQ(opt::simd::quantize_gain(1.0 / 65535.0, kMin), 1);
  EXPECT_EQ(opt::simd::quantize_gain(1.5 / 65535.0, kMin), 2);
}

/// Dense blocked-SoA rounds must pick the exact sequence the pooled
/// reference scan picks, quantized or not, under either ISA.
TEST(DenseArgmax, MatchesPooledScanRoundForRound) {
  const auto scenario = test::small_paper_scenario(17, 2, 2);
  const auto extraction = pdcs::extract_all(scenario);
  const auto& cands = extraction.candidates;
  ASSERT_GE(cands.size(), 8u);

  const opt::ChargingObjective objective(scenario, cands,
                                         opt::ObjectiveKind::kUtility,
                                         opt::GainEngine::kFlatCsr);

  // Pooled reference picks.
  std::vector<std::size_t> ids(cands.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  std::vector<std::size_t> want;
  {
    opt::ChargingObjective::State state(objective);
    state.enable_incremental();
    std::vector<bool> taken(cands.size(), false);
    for (int r = 0; r < 24; ++r) {
      const auto best = state.best_gain(ids, 0, ids.size(), taken);
      if (!best.found()) break;
      taken[best.index] = true;
      state.add(best.index);
      want.push_back(best.index);
    }
    ASSERT_FALSE(want.empty());
  }

  std::vector<Isa> isas = {Isa::kScalar};
  if (have_avx2()) isas.push_back(Isa::kAvx2);
  IsaGuard guard;
  for (const Isa isa : isas) {
    opt::simd::force_isa(isa);
    for (const bool quantize : {false, true}) {
      opt::ChargingObjective::State state(objective);
      state.enable_incremental(quantize);
      EXPECT_EQ(state.quantized(), quantize);
      std::vector<std::size_t> got;
      for (int r = 0; r < 24; ++r) {
        const auto best = state.best_gain_dense(0, cands.size());
        if (!best.found()) break;
        state.mark_ineligible(best.index);
        state.add(best.index);
        got.push_back(best.index);
      }
      EXPECT_EQ(got, want) << "isa " << opt::simd::isa_name(isa)
                           << " quantize " << quantize;
    }
  }
}

/// Retiring and re-admitting a row keeps the quantized lane coherent: a
/// re-admitted clean row must be scannable again with its exact image.
TEST(DenseArgmax, EligibilityRoundTripRestoresQuantLane) {
  const auto scenario = test::small_paper_scenario(9, 2, 2);
  const auto extraction = pdcs::extract_all(scenario);
  const auto& cands = extraction.candidates;
  ASSERT_GE(cands.size(), 2u);

  const opt::ChargingObjective objective(scenario, cands,
                                         opt::ObjectiveKind::kUtility,
                                         opt::GainEngine::kFlatCsr);
  opt::ChargingObjective::State state(objective);
  state.enable_incremental(/*quantize=*/true);

  const auto first = state.best_gain_dense(0, cands.size());
  ASSERT_TRUE(first.found());
  // Retire the winner: the next dense scan must pick someone else.
  state.mark_ineligible(first.index);
  EXPECT_FALSE(state.is_eligible(first.index));
  const auto second = state.best_gain_dense(0, cands.size());
  if (second.found()) EXPECT_NE(second.index, first.index);
  // Re-admit: the original winner wins again with the identical gain.
  state.set_eligible(first.index, true);
  const auto again = state.best_gain_dense(0, cands.size());
  ASSERT_TRUE(again.found());
  EXPECT_EQ(again.index, first.index);
  EXPECT_EQ(bits(again.gain), bits(first.gain));
}

// The headline bit-identity property: every (ISA × quantize) variant of the
// flat engine reproduces the legacy engine's placements exactly, across
// greedy modes, objective kinds, and thread counts — on the paper-style
// scenario and an adversarial fuzz scenario.
TEST(PlacementIdentity, AcrossIsaQuantizeModeKindThreads) {
  std::vector<model::Scenario> scenarios;
  scenarios.push_back(test::small_paper_scenario(13, 2, 2));
  {
    fuzz::GeneratorOptions gen;
    gen.adversarial_bias = 1.0;
    scenarios.emplace_back(fuzz::random_config(41, gen));
  }

  std::vector<Isa> isas = {Isa::kScalar};
  if (have_avx2()) isas.push_back(Isa::kAvx2);
  IsaGuard guard;

  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    const auto& scenario = scenarios[si];
    const auto extraction = pdcs::extract_all(scenario);
    if (extraction.candidates.empty()) continue;

    for (const auto mode :
         {opt::GreedyMode::kPerType, opt::GreedyMode::kGlobal,
          opt::GreedyMode::kLazyGlobal}) {
      for (const auto kind :
           {opt::ObjectiveKind::kUtility, opt::ObjectiveKind::kLogUtility}) {
        for (const std::size_t workers : {0u, 1u, 4u}) {
          std::unique_ptr<parallel::ThreadPool> pool;
          if (workers > 0) {
            pool = std::make_unique<parallel::ThreadPool>(workers);
          }
          // Baseline: legacy engine under forced-scalar kernels.
          opt::simd::force_isa(Isa::kScalar);
          const auto base = opt::select_strategies(
              scenario, extraction.candidates, mode, kind, pool.get(),
              opt::GainEngine::kLegacy);
          for (const Isa isa : isas) {
            opt::simd::force_isa(isa);
            for (const bool quantize : {false, true}) {
              const auto run = opt::select_strategies(
                  scenario, extraction.candidates, mode, kind, pool.get(),
                  opt::GainEngine::kFlatCsr, quantize);
              const std::string label =
                  "scenario " + std::to_string(si) + " mode " +
                  std::to_string(static_cast<int>(mode)) + " kind " +
                  std::to_string(static_cast<int>(kind)) + " workers " +
                  std::to_string(workers) + " isa " +
                  opt::simd::isa_name(isa) + " quantize " +
                  std::to_string(quantize);
              EXPECT_EQ(run.selected, base.selected) << label;
              EXPECT_EQ(bits(run.approx_utility), bits(base.approx_utility))
                  << label;
              EXPECT_EQ(bits(run.exact_utility), bits(base.exact_utility))
                  << label;
            }
          }
        }
      }
    }
  }
}

TEST(Counters, DenseArgmaxBumpsKernelPathCounters) {
  const auto scenario = test::small_paper_scenario(23, 2, 2);
  const auto extraction = pdcs::extract_all(scenario);
  ASSERT_FALSE(extraction.candidates.empty());

  obs::set_metrics_enabled(true);
  obs::reset_metrics();
  (void)opt::select_strategies(scenario, extraction.candidates,
                               opt::GreedyMode::kGlobal,
                               opt::ObjectiveKind::kUtility, nullptr,
                               opt::GainEngine::kFlatCsr, /*quantize=*/true);
  const std::uint64_t simd_rows = obs::counter("coverage.simd_rows").value();
  const std::uint64_t rechecks =
      obs::counter("gain.quantized_rechecks").value();
  const std::uint64_t rows = obs::counter("coverage.rows_scanned").value();
  obs::set_metrics_enabled(false);
  obs::reset_metrics();

  EXPECT_GT(simd_rows, 0u);
  EXPECT_GT(rechecks, 0u);
  // Dense rows are a subset of all scanned rows.
  EXPECT_GE(rows, simd_rows);
}

}  // namespace
}  // namespace hipo
