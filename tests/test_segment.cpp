#include "src/geometry/segment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/geometry/angles.hpp"
#include "src/geometry/vec2.hpp"
#include "src/util/rng.hpp"

namespace hipo::geom {
namespace {

TEST(Vec2, BasicAlgebra) {
  const Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, Vec2(4.0, 1.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -7.0);
}

TEST(Vec2, NormAndNormalized) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  const Vec2 u = v.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-15);
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
}

TEST(Vec2, PerpAndRotation) {
  const Vec2 v{1.0, 0.0};
  EXPECT_EQ(v.perp(), Vec2(0.0, 1.0));
  const Vec2 r = v.rotated(kPi / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-15);
  EXPECT_NEAR(r.y, 1.0, 1e-15);
}

TEST(Vec2, AngleRoundTrip) {
  hipo::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.uniform(-kPi, kPi);
    EXPECT_NEAR(unit_vector(a).angle(), a, 1e-12);
  }
}

TEST(Orientation, SignsAndCollinear) {
  EXPECT_EQ(orientation({0, 0}, {1, 0}, {0, 1}), 1);
  EXPECT_EQ(orientation({0, 0}, {0, 1}, {1, 0}), -1);
  EXPECT_EQ(orientation({0, 0}, {1, 1}, {2, 2}), 0);
}

TEST(Orientation, ScaleInvariantTolerance) {
  // Large coordinates should still classify a clearly-CCW triple.
  EXPECT_EQ(orientation({1e6, 1e6}, {2e6, 1e6}, {1e6, 2e6}), 1);
}

TEST(OnSegment, EndpointsAndMidpoint) {
  const Segment s({0, 0}, {2, 0});
  EXPECT_TRUE(on_segment({0, 0}, s));
  EXPECT_TRUE(on_segment({2, 0}, s));
  EXPECT_TRUE(on_segment({1, 0}, s));
  EXPECT_FALSE(on_segment({3, 0}, s));
  EXPECT_FALSE(on_segment({1, 0.1}, s));
}

TEST(PointSegmentDistance, Cases) {
  const Segment s({0, 0}, {2, 0});
  EXPECT_DOUBLE_EQ(point_segment_distance({1, 1}, s), 1.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({-1, 0}, s), 1.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({3, 0}, s), 1.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({1, 0}, s), 0.0);
}

TEST(PointSegmentDistance, DegenerateSegment) {
  const Segment s({1, 1}, {1, 1});
  EXPECT_NEAR(point_segment_distance({4, 5}, s), 5.0, 1e-12);
}

TEST(SegmentsIntersect, ProperCross) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {2, 2}}, {{0, 2}, {2, 0}}));
}

TEST(SegmentsIntersect, Disjoint) {
  EXPECT_FALSE(segments_intersect({{0, 0}, {1, 0}}, {{0, 1}, {1, 1}}));
}

TEST(SegmentsIntersect, TouchingEndpoint) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {1, 0}}, {{1, 0}, {2, 1}}));
}

TEST(SegmentsIntersect, TShape) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {2, 0}}, {{1, 0}, {1, 1}}));
}

TEST(SegmentsIntersect, CollinearOverlap) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {2, 0}}, {{1, 0}, {3, 0}}));
}

TEST(SegmentsIntersect, CollinearDisjoint) {
  EXPECT_FALSE(segments_intersect({{0, 0}, {1, 0}}, {{2, 0}, {3, 0}}));
}

TEST(SegmentIntersectionPoint, ProperCrossExact) {
  const auto p =
      segment_intersection_point({{0, 0}, {2, 2}}, {{0, 2}, {2, 0}});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 1.0, 1e-12);
  EXPECT_NEAR(p->y, 1.0, 1e-12);
}

TEST(SegmentIntersectionPoint, NoneForParallel) {
  EXPECT_FALSE(
      segment_intersection_point({{0, 0}, {1, 0}}, {{0, 1}, {1, 1}}).has_value());
}

TEST(RaySegmentHit, ForwardHit) {
  const auto t = ray_segment_hit({{0, 0}, {1, 0}}, {{2, -1}, {2, 1}});
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 2.0, 1e-12);
}

TEST(RaySegmentHit, BehindRayMisses) {
  EXPECT_FALSE(ray_segment_hit({{0, 0}, {1, 0}}, {{-2, -1}, {-2, 1}}).has_value());
}

TEST(RaySegmentHit, ParallelOffsetMisses) {
  EXPECT_FALSE(ray_segment_hit({{0, 0}, {1, 0}}, {{0, 1}, {5, 1}}).has_value());
}

TEST(RaySegmentHit, CollinearHitsNearestPoint) {
  const auto t = ray_segment_hit({{0, 0}, {1, 0}}, {{3, 0}, {5, 0}});
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 3.0, 1e-9);
}

TEST(LineSegmentIntersections, CrossesOnce) {
  const auto pts =
      line_segment_intersections({0, 0}, {1, 0}, {{3, -1}, {3, 1}});
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_NEAR(pts[0].x, 3.0, 1e-12);
  EXPECT_NEAR(pts[0].y, 0.0, 1e-12);
}

TEST(LineSegmentIntersections, LineExtendsBothWays) {
  // Intersection behind the direction vector still counts (it is a line).
  const auto pts =
      line_segment_intersections({0, 0}, {1, 0}, {{-3, -1}, {-3, 1}});
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_NEAR(pts[0].x, -3.0, 1e-12);
}

// Property: for random segment pairs, intersection point (when reported)
// lies on both segments.
class SegmentPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SegmentPropertyTest, IntersectionPointLiesOnBoth) {
  hipo::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  for (int i = 0; i < 300; ++i) {
    const Segment s1({rng.uniform(-5, 5), rng.uniform(-5, 5)},
                     {rng.uniform(-5, 5), rng.uniform(-5, 5)});
    const Segment s2({rng.uniform(-5, 5), rng.uniform(-5, 5)},
                     {rng.uniform(-5, 5), rng.uniform(-5, 5)});
    const auto p = segment_intersection_point(s1, s2);
    if (p) {
      EXPECT_LE(point_segment_distance(*p, s1), 1e-6);
      EXPECT_LE(point_segment_distance(*p, s2), 1e-6);
      EXPECT_TRUE(segments_intersect(s1, s2, 1e-6));
    }
  }
}

TEST_P(SegmentPropertyTest, BooleanAgreesWithConstruction) {
  hipo::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  for (int i = 0; i < 300; ++i) {
    const Segment s1({rng.uniform(-5, 5), rng.uniform(-5, 5)},
                     {rng.uniform(-5, 5), rng.uniform(-5, 5)});
    const Segment s2({rng.uniform(-5, 5), rng.uniform(-5, 5)},
                     {rng.uniform(-5, 5), rng.uniform(-5, 5)});
    if (segments_intersect(s1, s2, 1e-12)) {
      // A reported crossing must produce a witness point (tolerances differ
      // slightly; allow the looser construction epsilon).
      EXPECT_TRUE(segment_intersection_point(s1, s2, 1e-9).has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SegmentPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace hipo::geom
