#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/opt/coverage_matrix.hpp"
#include "src/opt/greedy.hpp"
#include "src/pdcs/extract.hpp"
#include "src/shard/extract.hpp"
#include "src/shard/plan.hpp"
#include "src/shard/pool.hpp"
#include "src/shard/runner.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::shard {
namespace {

/// A [0,100]² scenario whose halo (4·d_max + ε = 20.001) is well below the
/// region size, so multi-shard plans genuinely subset devices and
/// obstacles. Devices are rejection-sampled deterministically; extras are
/// pinned to shard borders and to exactly 2·d_max from a border.
model::Scenario spread_scenario(std::uint64_t seed, std::size_t devices,
                                bool straddling_obstacle,
                                bool border_devices) {
  model::Scenario::Config cfg = test::simple_config();  // d ∈ [1,5]
  cfg.region.lo = {0.0, 0.0};
  cfg.region.hi = {100.0, 100.0};
  cfg.charger_counts = {3};
  if (straddling_obstacle) {
    // Crosses the x=50 border of a 2×2 plan and spans ≥3 cells of a 1×7
    // strip plan (borders at k·100/7), while staying clear of the border
    // device pins around (50, 50).
    cfg.obstacles.push_back(geom::make_rect({40.0, 60.0}, {72.0, 66.0}));
    cfg.obstacles.push_back(
        geom::Polygon({{12.0, 70.0}, {20.0, 72.0}, {15.0, 78.0}}));
  }
  Rng rng(seed);
  for (std::size_t i = 0; i < devices; ++i) {
    model::Device dev;
    dev.orientation = rng.uniform(0.0, 6.28);
    for (int attempt = 0; attempt < 1000; ++attempt) {
      dev.pos = {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
      bool inside = false;
      for (const auto& h : cfg.obstacles) {
        if (h.contains(dev.pos)) inside = true;
      }
      if (!inside) break;
    }
    cfg.devices.push_back(dev);
  }
  if (border_devices) {
    // Exactly on the 2×2 borders (x=50 / y=50), on the region corner of the
    // interior cross, and exactly 2·d_max = 10 m from a border — the
    // neighbor-radius boundary cases the halo argument must survive.
    cfg.devices.push_back(test::device_at(50.0, 10.0));
    cfg.devices.push_back(test::device_at(50.0, 50.0));
    cfg.devices.push_back(test::device_at(10.0, 50.0));
    cfg.devices.push_back(test::device_at(40.0, 25.0));
    cfg.devices.push_back(test::device_at(60.0, 75.0));
    cfg.devices.push_back(test::device_at(50.0, 49.9999));
  }
  return model::Scenario(std::move(cfg));
}

void expect_identical(const pdcs::ExtractionResult& want,
                      const pdcs::ExtractionResult& got) {
  EXPECT_EQ(want.raw_candidates, got.raw_candidates);
  EXPECT_EQ(want.per_type_counts, got.per_type_counts);
  ASSERT_EQ(want.candidates.size(), got.candidates.size());
  for (std::size_t i = 0; i < want.candidates.size(); ++i) {
    const auto& a = want.candidates[i];
    const auto& b = got.candidates[i];
    ASSERT_EQ(a.strategy.type, b.strategy.type) << "candidate " << i;
    ASSERT_EQ(a.strategy.pos.x, b.strategy.pos.x) << "candidate " << i;
    ASSERT_EQ(a.strategy.pos.y, b.strategy.pos.y) << "candidate " << i;
    ASSERT_EQ(a.strategy.orientation, b.strategy.orientation)
        << "candidate " << i;
    ASSERT_EQ(a.covered, b.covered) << "candidate " << i;
    ASSERT_EQ(a.powers, b.powers) << "candidate " << i;
  }
}

pdcs::ExtractionResult sharded(const model::Scenario& s, std::size_t shards,
                               std::size_t processes = 0,
                               parallel::ThreadPool* pool = nullptr,
                               RunnerStats* stats = nullptr) {
  RunnerOptions opt;
  opt.shards = shards;
  opt.processes = processes;
  opt.pool = pool;
  return extract_sharded(s, opt, stats);
}

TEST(ShardPlan, OwnershipPartitionsDevices) {
  const auto s = spread_scenario(31, 40, true, true);
  const ShardPlan plan(s, {.shards = 4});
  EXPECT_EQ(plan.num_shards(), 4u);
  EXPECT_EQ(plan.grid_x() * plan.grid_y(), 4u);
  std::vector<std::size_t> owners(s.num_devices(), 0);
  std::size_t total = 0;
  for (std::size_t k = 0; k < plan.num_shards(); ++k) {
    const auto& m = plan.shard(k);
    EXPECT_EQ(m.shard_id, k);
    total += m.owned.size();
    EXPECT_TRUE(std::is_sorted(m.owned.begin(), m.owned.end()));
    EXPECT_TRUE(std::is_sorted(m.visible.begin(), m.visible.end()));
    // owned ⊆ visible.
    EXPECT_TRUE(std::includes(m.visible.begin(), m.visible.end(),
                              m.owned.begin(), m.owned.end()));
    for (std::size_t j : m.owned) {
      EXPECT_EQ(plan.owner_of(s.device(j).pos), k);
      ++owners[j];
    }
  }
  EXPECT_EQ(total, s.num_devices());
  for (std::size_t c : owners) EXPECT_EQ(c, 1u);  // exactly one owner each
}

TEST(ShardPlan, BorderDeviceGoesToHigherCell) {
  const auto s = spread_scenario(32, 4, false, false);
  const ShardPlan plan(s, {.shards = 4});  // 2×2, borders at 50
  // Floor semantics: exactly on an interior border → higher-index cell.
  EXPECT_EQ(plan.owner_of({50.0, 10.0}), 1u);
  EXPECT_EQ(plan.owner_of({10.0, 50.0}), 2u);
  EXPECT_EQ(plan.owner_of({50.0, 50.0}), 3u);
  // Region high edge folds into the last cell.
  EXPECT_EQ(plan.owner_of({100.0, 100.0}), 3u);
}

TEST(ShardPlan, SingleShardIsDegenerate) {
  const auto s = spread_scenario(33, 25, true, false);
  const ShardPlan plan(s, {.shards = 1});
  EXPECT_EQ(plan.num_shards(), 1u);
  const auto& m = plan.shard(0);
  EXPECT_EQ(m.owned.size(), s.num_devices());
  EXPECT_EQ(m.visible.size(), s.num_devices());
  EXPECT_EQ(m.obstacles.size(), s.num_obstacles());
}

TEST(ShardPlan, HaloSubsetsDevicesAndObstacles) {
  const auto s = spread_scenario(34, 60, true, false);
  const ShardPlan plan(s, {.shards = 4});
  EXPECT_DOUBLE_EQ(plan.halo_radius(), 4.0 * s.max_charge_range() + 1e-3);
  // With a 20 m halo on 50 m cells of a 100 m region, at least one shard
  // must see strictly fewer devices than the whole scenario — otherwise the
  // test exercises nothing.
  bool any_proper_subset = false;
  for (std::size_t k = 0; k < plan.num_shards(); ++k) {
    if (plan.shard(k).visible.size() < s.num_devices()) {
      any_proper_subset = true;
    }
  }
  EXPECT_TRUE(any_proper_subset);
}

TEST(ShardExtract, SingleShardMatchesExtractAll) {
  const auto s = spread_scenario(35, 30, true, false);
  const auto want = pdcs::extract_all(s);
  const auto got = sharded(s, 1);
  expect_identical(want, got);
  EXPECT_EQ(want.task_seconds.size(), got.task_seconds.size());
}

TEST(ShardExtract, ManyShardCountsMatchExtractAll) {
  const auto s = spread_scenario(36, 40, true, true);
  const auto want = pdcs::extract_all(s);
  for (std::size_t shards : {2u, 4u, 7u}) {
    SCOPED_TRACE(shards);
    expect_identical(want, sharded(s, shards));
  }
}

TEST(ShardExtract, EmptyShardsAreHarmless) {
  // All devices clustered in one corner: most of a 2×2 plan owns nothing.
  model::Scenario::Config cfg = test::simple_config();
  cfg.region.hi = {100.0, 100.0};
  cfg.devices = {test::device_at(5, 5), test::device_at(8, 6),
                 test::device_at(6, 9), test::device_at(11, 8)};
  const model::Scenario s(std::move(cfg));
  const ShardPlan plan(s, {.shards = 4});
  std::size_t empty = 0;
  for (std::size_t k = 0; k < plan.num_shards(); ++k) {
    if (plan.shard(k).owned.empty()) ++empty;
  }
  EXPECT_GE(empty, 2u);
  expect_identical(pdcs::extract_all(s), sharded(s, 4));
}

TEST(ShardExtract, ObstacleStraddlingThreeShards) {
  // A 1×7 strip plan over the straddling rect: the rect spans cells around
  // x ∈ [44, 57] of cell width 100/7 ≈ 14.3 — at least three shards.
  const auto s = spread_scenario(37, 30, true, false);
  const ShardPlan plan(s, {.shards = 7});
  std::size_t sees_first_obstacle = 0;
  for (std::size_t k = 0; k < plan.num_shards(); ++k) {
    const auto& obs = plan.shard(k).obstacles;
    if (std::find(obs.begin(), obs.end(), 0u) != obs.end()) {
      ++sees_first_obstacle;
    }
  }
  EXPECT_GE(sees_first_obstacle, 3u);
  expect_identical(pdcs::extract_all(s), sharded(s, 7));
}

TEST(ShardExtract, ThreadPoolDoesNotChangeResult) {
  const auto s = spread_scenario(38, 36, true, true);
  const auto want = pdcs::extract_all(s);
  parallel::ThreadPool pool(4);
  for (std::size_t shards : {1u, 4u}) {
    SCOPED_TRACE(shards);
    expect_identical(want, sharded(s, shards, 0, &pool));
  }
}

TEST(ShardExtract, TileBackoffKeepsOutputIdentical) {
  const auto s = spread_scenario(39, 30, true, false);
  const ShardPlan plan(s, {.shards = 2});
  pdcs::ExtractOptions ex;

  // Unbounded reference run to learn this shard's arena + transient peak.
  TileOptions unbounded;
  unbounded.segment_entries = 512;
  CandidatePool ref_pool(unbounded.segment_entries);
  const ShardStats ref =
      extract_shard(s, plan, 0, ex, unbounded, ref_pool, nullptr);
  ASSERT_GT(ref.rows, 0u);
  ASSERT_GT(ref.peak_bytes, ref_pool.bytes());

  // Ceiling above the arena but below arena + full-tile transients: the
  // driver must back off instead of failing, and the output must not move.
  TileOptions tight = unbounded;
  tight.mem_ceiling_bytes =
      ref_pool.bytes() + (ref.peak_bytes - ref_pool.bytes()) / 4 + 1;
  CandidatePool tight_pool(tight.segment_entries);
  const ShardStats st =
      extract_shard(s, plan, 0, ex, tight, tight_pool, nullptr);
  EXPECT_GE(st.tile_backoffs, 1u);
  EXPECT_LT(st.final_tile_tasks, TileOptions{}.tile_tasks);
  EXPECT_EQ(st.rows, ref.rows);
  EXPECT_EQ(tight_pool.bytes(), ref_pool.bytes());
  std::vector<CandidatePool::RowRef> a, b;
  ref_pool.for_each_row([&](const CandidatePool::RowRef& r) {
    a.push_back(r);
  });
  tight_pool.for_each_row([&](const CandidatePool::RowRef& r) {
    b.push_back(r);
  });
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].task, b[i].task);
    EXPECT_TRUE(std::equal(a[i].covered.begin(), a[i].covered.end(),
                           b[i].covered.begin(), b[i].covered.end()));
    EXPECT_TRUE(std::equal(a[i].powers.begin(), a[i].powers.end(),
                           b[i].powers.begin(), b[i].powers.end()));
  }
}

TEST(ShardExtract, ArenaOverCeilingThrows) {
  const auto s = spread_scenario(40, 30, true, false);
  const ShardPlan plan(s, {.shards = 1});
  TileOptions tile;
  tile.segment_entries = 512;
  tile.mem_ceiling_bytes = 1024;  // below even one arena segment
  CandidatePool pool(tile.segment_entries);
  EXPECT_THROW(
      extract_shard(s, plan, 0, pdcs::ExtractOptions{}, tile, pool, nullptr),
      ConfigError);
}

TEST(ShardRunner, ForkedProcessesMatchInProcess) {
  const auto s = spread_scenario(41, 32, true, true);
  const auto want = pdcs::extract_all(s);
  for (std::size_t procs : {1u, 2u, 4u}) {
    SCOPED_TRACE(procs);
    RunnerStats stats;
    const auto got = sharded(s, 4, procs, nullptr, &stats);
    expect_identical(want, got);
    EXPECT_EQ(stats.shards, 4u);
    EXPECT_EQ(stats.processes, procs);
    EXPECT_EQ(stats.shard_seconds.size(), 4u);
    EXPECT_EQ(stats.rows, want.raw_candidates);
    // Worker-measured task seconds must cover every owned task.
    for (double t : got.task_seconds) EXPECT_GE(t, 0.0);
  }
}

TEST(ShardRunner, StatsAccounting) {
  const auto s = spread_scenario(42, 24, true, false);
  RunnerStats stats;
  const auto got = sharded(s, 4, 0, nullptr, &stats);
  EXPECT_EQ(stats.rows, got.raw_candidates);
  EXPECT_GT(stats.pool_bytes, 0u);
  EXPECT_GE(stats.peak_shard_bytes, 0u);
  EXPECT_GE(stats.merge_seconds, 0.0);
}

TEST(ShardRunner, PlacementsBitIdenticalAcrossShardCounts) {
  const auto s = spread_scenario(43, 30, true, true);
  const auto base = pdcs::extract_all(s);
  const auto base_sel = opt::select_strategies(s, base.candidates);
  parallel::ThreadPool pool(4);
  for (std::size_t shards : {1u, 2u, 4u, 7u}) {
    for (parallel::ThreadPool* p : {static_cast<parallel::ThreadPool*>(nullptr),
                                    &pool}) {
      SCOPED_TRACE(shards);
      const auto ext = sharded(s, shards, 0, p);
      const auto sel = opt::select_strategies(s, ext.candidates,
                                              opt::GreedyMode::kPerType,
                                              opt::ObjectiveKind::kUtility, p);
      ASSERT_EQ(base_sel.placement.size(), sel.placement.size());
      for (std::size_t i = 0; i < sel.placement.size(); ++i) {
        EXPECT_EQ(base_sel.placement[i].pos.x, sel.placement[i].pos.x);
        EXPECT_EQ(base_sel.placement[i].pos.y, sel.placement[i].pos.y);
        EXPECT_EQ(base_sel.placement[i].orientation,
                  sel.placement[i].orientation);
        EXPECT_EQ(base_sel.placement[i].type, sel.placement[i].type);
      }
      EXPECT_EQ(base_sel.approx_utility, sel.approx_utility);
      EXPECT_EQ(base_sel.exact_utility, sel.exact_utility);
    }
  }
}

TEST(CoverageMatrixBuilder, MatchesSpanConstructor) {
  const auto s = spread_scenario(44, 20, true, false);
  const auto ext = pdcs::extract_all(s);
  ASSERT_FALSE(ext.candidates.empty());
  const opt::CoverageMatrix cold(
      std::span<const pdcs::Candidate>(ext.candidates), s.num_devices());
  opt::CoverageMatrixBuilder builder(s.num_devices());
  std::vector<std::uint32_t> covered;
  for (const auto& c : ext.candidates) {
    covered.assign(c.covered.begin(), c.covered.end());
    builder.add_row(c.strategy, covered, c.powers);
  }
  const opt::CoverageMatrix warm = std::move(builder).finish();
  EXPECT_TRUE(cold.same_as(warm));
}

TEST(CoverageMatrixBuilder, WarmGreedyMatchesSpanGreedy) {
  const auto s = spread_scenario(45, 24, true, false);
  const auto ext = sharded(s, 4);
  opt::CoverageMatrixBuilder builder(s.num_devices());
  std::vector<std::uint32_t> covered;
  for (const auto& c : ext.candidates) {
    covered.assign(c.covered.begin(), c.covered.end());
    builder.add_row(c.strategy, covered, c.powers);
  }
  const opt::CoverageMatrix warm = std::move(builder).finish();
  const auto span_sel = opt::select_strategies(s, ext.candidates);
  const auto warm_sel = opt::select_strategies(s, warm);
  EXPECT_EQ(span_sel.selected, warm_sel.selected);
  EXPECT_EQ(span_sel.approx_utility, warm_sel.approx_utility);
  EXPECT_EQ(span_sel.exact_utility, warm_sel.exact_utility);
}

TEST(CandidatePool, SpliceAndAccounting) {
  CandidatePool a(64), b(64);
  pdcs::Candidate c;
  c.strategy.type = 0;
  c.covered = {1, 3, 7};
  c.powers = {0.5, 0.25, 0.125};
  a.append(3, c);
  b.append(5, c);
  b.append(6, c);
  EXPECT_EQ(a.num_rows(), 1u);
  EXPECT_GT(a.bytes(), 0u);
  const std::size_t bytes_sum = a.bytes() + b.bytes();
  a.splice(std::move(b));
  EXPECT_EQ(a.num_rows(), 3u);
  EXPECT_EQ(a.num_entries(), 9u);
  EXPECT_EQ(a.bytes(), bytes_sum);
  EXPECT_EQ(b.num_rows(), 0u);
  std::vector<std::uint32_t> tasks;
  a.for_each_row(
      [&](const CandidatePool::RowRef& r) { tasks.push_back(r.task); });
  EXPECT_EQ(tasks, (std::vector<std::uint32_t>{3, 5, 6}));
}

}  // namespace
}  // namespace hipo::shard
