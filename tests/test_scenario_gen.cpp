#include "src/model/scenario_gen.hpp"

#include <gtest/gtest.h>

#include "src/geometry/angles.hpp"
#include "src/util/error.hpp"

namespace hipo::model {
namespace {

using geom::kPi;

TEST(Eps1Mapping, Theorem42Formula) {
  EXPECT_NEAR(eps1_from_eps(0.15), 0.3 / 0.7, 1e-12);
  EXPECT_THROW(eps1_from_eps(0.0), hipo::ConfigError);
  EXPECT_THROW(eps1_from_eps(0.5), hipo::ConfigError);
}

TEST(PaperTables, Table2ChargerTypes) {
  const auto cfg = paper_tables(GenOptions{});
  ASSERT_EQ(cfg.charger_types.size(), 3u);
  EXPECT_NEAR(cfg.charger_types[0].angle, kPi / 6.0, 1e-12);
  EXPECT_NEAR(cfg.charger_types[1].angle, kPi / 3.0, 1e-12);
  EXPECT_NEAR(cfg.charger_types[2].angle, kPi / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(cfg.charger_types[0].d_min, 5.0);
  EXPECT_DOUBLE_EQ(cfg.charger_types[0].d_max, 10.0);
  EXPECT_DOUBLE_EQ(cfg.charger_types[1].d_min, 3.0);
  EXPECT_DOUBLE_EQ(cfg.charger_types[1].d_max, 8.0);
  EXPECT_DOUBLE_EQ(cfg.charger_types[2].d_min, 2.0);
  EXPECT_DOUBLE_EQ(cfg.charger_types[2].d_max, 6.0);
}

TEST(PaperTables, Table3DeviceTypes) {
  const auto cfg = paper_tables(GenOptions{});
  ASSERT_EQ(cfg.device_types.size(), 4u);
  EXPECT_NEAR(cfg.device_types[0].angle, kPi / 2.0, 1e-12);
  EXPECT_NEAR(cfg.device_types[1].angle, 2.0 * kPi / 3.0, 1e-12);
  EXPECT_NEAR(cfg.device_types[2].angle, 3.0 * kPi / 4.0, 1e-12);
  EXPECT_NEAR(cfg.device_types[3].angle, kPi, 1e-12);
}

TEST(PaperTables, Table4PairParams) {
  const auto cfg = paper_tables(GenOptions{});
  ASSERT_EQ(cfg.pair_params.size(), 12u);
  // Spot checks against Table 4 (row-major charger × device).
  EXPECT_DOUBLE_EQ(cfg.pair_params[0].a, 100.0);   // C1 × D1
  EXPECT_DOUBLE_EQ(cfg.pair_params[0].b, 40.0);
  EXPECT_DOUBLE_EQ(cfg.pair_params[3].a, 190.0);   // C1 × D4
  EXPECT_DOUBLE_EQ(cfg.pair_params[3].b, 76.0);
  EXPECT_DOUBLE_EQ(cfg.pair_params[4].a, 110.0);   // C2 × D1
  EXPECT_DOUBLE_EQ(cfg.pair_params[4].b, 44.0);
  EXPECT_DOUBLE_EQ(cfg.pair_params[11].a, 210.0);  // C3 × D4
  EXPECT_DOUBLE_EQ(cfg.pair_params[11].b, 84.0);
}

TEST(PaperTables, ChargerBudgetScales) {
  GenOptions opt;
  opt.charger_multiplier = 3;  // the default setting of Section 6
  const auto cfg = paper_tables(opt);
  EXPECT_EQ(cfg.charger_counts, (std::vector<int>{3, 6, 9}));
}

TEST(PaperTables, AngleScaleClampsAtTwoPi) {
  GenOptions opt;
  opt.recv_angle_scale = 3.0;  // 3π > 2π for device type 4
  const auto cfg = paper_tables(opt);
  EXPECT_LE(cfg.device_types[3].angle, geom::kTwoPi + 1e-12);
}

TEST(PaperTables, DminScaleKeepsOrdering) {
  GenOptions opt;
  opt.d_min_scale = 1.4;
  const auto cfg = paper_tables(opt);
  for (const auto& ct : cfg.charger_types) {
    EXPECT_LT(ct.d_min, ct.d_max);
  }
}

TEST(MakePaperScenario, DefaultCounts) {
  hipo::Rng rng(1);
  GenOptions opt;  // device multiplier 4 → 4·(4+3+2+1) = 40
  const auto s = make_paper_scenario(opt, rng);
  EXPECT_EQ(s.num_devices(), 40u);
  EXPECT_EQ(s.num_chargers(), 18u);  // 3·(1+2+3)
  EXPECT_EQ(s.num_obstacles(), 2u);
}

TEST(MakePaperScenario, DevicesAvoidObstacles) {
  hipo::Rng rng(2);
  GenOptions opt;
  opt.device_multiplier = 8;
  const auto s = make_paper_scenario(opt, rng);
  for (std::size_t j = 0; j < s.num_devices(); ++j) {
    for (const auto& h : s.obstacles()) {
      EXPECT_FALSE(h.contains_interior(s.device(j).pos));
    }
  }
}

TEST(MakePaperScenario, UniformDeviceCounts) {
  hipo::Rng rng(3);
  GenOptions opt;
  opt.uniform_device_counts = true;
  opt.uniform_device_base = 2;
  opt.device_multiplier = 1;
  const auto s = make_paper_scenario(opt, rng);
  EXPECT_EQ(s.num_devices(), 8u);  // 2 per each of 4 types
}

TEST(MakePaperScenario, PthOffsetsKeepType2Fixed) {
  hipo::Rng rng(4);
  GenOptions opt;
  opt.p_th_type_offset = 0.01;
  const auto s = make_paper_scenario(opt, rng);
  bool found[4] = {false, false, false, false};
  for (std::size_t j = 0; j < s.num_devices(); ++j) {
    const auto& d = s.device(j);
    found[d.type] = true;
    // p_th(t) = 0.05 + (t − 1)·0.01, so type index 1 stays at 0.05 and
    // higher types get larger thresholds.
    EXPECT_NEAR(d.p_th, 0.05 + (static_cast<double>(d.type) - 1.0) * 0.01,
                1e-12);
  }
  for (bool f : found) EXPECT_TRUE(f);
}

TEST(MakePaperScenario, DeterministicGivenSeed) {
  GenOptions opt;
  hipo::Rng a(7), b(7);
  const auto s1 = make_paper_scenario(opt, a);
  const auto s2 = make_paper_scenario(opt, b);
  ASSERT_EQ(s1.num_devices(), s2.num_devices());
  for (std::size_t j = 0; j < s1.num_devices(); ++j) {
    EXPECT_EQ(s1.device(j).pos, s2.device(j).pos);
    EXPECT_EQ(s1.device(j).orientation, s2.device(j).orientation);
  }
}

TEST(MakePaperScenario, ZeroObstacles) {
  hipo::Rng rng(8);
  GenOptions opt;
  opt.num_obstacles = 0;
  const auto s = make_paper_scenario(opt, rng);
  EXPECT_EQ(s.num_obstacles(), 0u);
}

TEST(FieldScenario, MatchesSection7Layout) {
  const auto s = make_field_scenario();
  EXPECT_EQ(s.num_devices(), 10u);
  EXPECT_EQ(s.num_chargers(), 6u);  // 1 + 2 + 3
  EXPECT_EQ(s.num_charger_types(), 3u);
  EXPECT_EQ(s.num_device_types(), 2u);
  EXPECT_EQ(s.num_obstacles(), 3u);
  // First sensor: (20 cm, 15 cm) @ 200°.
  EXPECT_NEAR(s.device(0).pos.x, 0.20, 1e-12);
  EXPECT_NEAR(s.device(0).pos.y, 0.15, 1e-12);
  EXPECT_NEAR(s.device(0).orientation, 200.0 * kPi / 180.0, 1e-12);
  // TX91501 near cutoff: 17 cm.
  EXPECT_NEAR(s.charger_type(2).d_min, 0.17, 1e-12);
  // Region is the 120 cm dotted square.
  EXPECT_NEAR(s.region().hi.x, 1.20, 1e-12);
}

TEST(FieldScenario, SensorsOutsideObstacles) {
  const auto s = make_field_scenario();
  for (std::size_t j = 0; j < s.num_devices(); ++j) {
    for (const auto& h : s.obstacles()) {
      EXPECT_FALSE(h.contains_interior(s.device(j).pos));
    }
  }
}

}  // namespace
}  // namespace hipo::model
