#include "src/pdcs/arrangement.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/opt/greedy.hpp"
#include "src/pdcs/extract.hpp"
#include "src/util/error.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::pdcs {
namespace {

TEST(ArrangementVertices, AllFeasibleAndInRange) {
  const auto s = test::small_paper_scenario(501, 1, 1);
  for (std::size_t q = 0; q < s.num_charger_types(); ++q) {
    const auto vertices = arrangement_vertices(s, q);
    EXPECT_FALSE(vertices.empty());
    const double range = s.charger_type(q).d_max + 1e-6;
    for (const auto& v : vertices) {
      EXPECT_TRUE(s.position_feasible(v));
      double nearest = 1e18;
      for (std::size_t j = 0; j < s.num_devices(); ++j) {
        nearest = std::min(nearest, geom::distance(v, s.device(j).pos));
      }
      EXPECT_LE(nearest, range);
    }
  }
}

TEST(ArrangementVertices, InvalidTypeThrows) {
  const auto s = test::simple_scenario();
  EXPECT_THROW(arrangement_vertices(s, 7), hipo::ConfigError);
}

TEST(ArrangementVertices, RingCircleIntersectionsPresent) {
  // Two devices at distance 4 with ring radii including d_max = 5: their
  // d_max circles intersect; those points must appear.
  auto cfg = test::simple_config();
  cfg.devices = {test::device_at(8, 10), test::device_at(12, 10)};
  const model::Scenario s(std::move(cfg));
  ArrangementOptions opt;
  opt.sample_ring_arcs = false;
  const auto vertices = arrangement_vertices(s, 0, opt);
  bool found = false;
  for (const auto& v : vertices) {
    if (std::abs(geom::distance(v, {8, 10}) - 5.0) < 1e-6 &&
        std::abs(geom::distance(v, {12, 10}) - 5.0) < 1e-6) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ArrangementVertices, ArcSamplingAddsVertices) {
  const auto s = test::simple_scenario();
  ArrangementOptions with;
  ArrangementOptions without;
  without.sample_ring_arcs = false;
  EXPECT_GT(arrangement_vertices(s, 0, with).size(),
            arrangement_vertices(s, 0, without).size());
}

TEST(ExtractArrangement, SoundCandidates) {
  const auto s = test::small_paper_scenario(502, 1, 1);
  const auto cands = extract_all_arrangement(s);
  EXPECT_FALSE(cands.empty());
  for (const auto& c : cands) {
    EXPECT_TRUE(s.position_feasible(c.strategy.pos));
    for (std::size_t k = 0; k < c.covered.size(); ++k) {
      EXPECT_NEAR(c.powers[k], s.approx_power(c.strategy, c.covered[k]),
                  1e-12);
      EXPECT_GT(c.powers[k], 0.0);
    }
  }
}

TEST(ExtractArrangement, TypeOrderPreserved) {
  const auto s = test::small_paper_scenario(503, 1, 1);
  const auto cands = extract_all_arrangement(s);
  std::size_t prev = 0;
  for (const auto& c : cands) {
    EXPECT_GE(c.strategy.type, prev);
    prev = c.strategy.type;
  }
}

TEST(ExtractArrangement, NoDominatedSurvivors) {
  const auto s = test::small_paper_scenario(504, 1, 1);
  const auto cands = extract_all_arrangement(s);
  for (std::size_t i = 0; i < cands.size(); ++i) {
    for (std::size_t k = 0; k < cands.size(); ++k) {
      if (i == k || cands[i].strategy.type != cands[k].strategy.type)
        continue;
      EXPECT_FALSE(dominated_by(cands[i], cands[k]) &&
                   !dominated_by(cands[k], cands[i]));
    }
  }
}

TEST(ExtractArrangement, QualityComparableToAlgorithm4) {
  // The two generators anchor candidates differently but both satisfy the
  // dominance story; their greedy utilities should be within a few percent
  // of each other on random instances.
  for (std::uint64_t seed : {505, 506, 507}) {
    const auto s = test::small_paper_scenario(seed, 2, 1);
    const auto arr = extract_all_arrangement(s);
    const auto alg4 = extract_all(s);
    const double u_arr =
        opt::select_strategies(s, arr, opt::GreedyMode::kLazyGlobal)
            .exact_utility;
    const double u_alg4 =
        opt::select_strategies(s, alg4.candidates,
                               opt::GreedyMode::kLazyGlobal)
            .exact_utility;
    EXPECT_NEAR(u_arr, u_alg4, 0.12) << "seed " << seed;
  }
}

TEST(ExtractArrangement, EmptyScenario) {
  auto cfg = test::simple_config();
  const model::Scenario s(std::move(cfg));
  EXPECT_TRUE(extract_all_arrangement(s).empty());
}

}  // namespace
}  // namespace hipo::pdcs
