#include "src/model/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/model/scenario_gen.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::model {
namespace {

TEST(ScenarioIo, RoundTripSimpleScenario) {
  const auto original = test::blocked_scenario();
  std::stringstream buffer;
  write_scenario(buffer, original);
  const auto restored = read_scenario(buffer);

  ASSERT_EQ(restored.num_devices(), original.num_devices());
  ASSERT_EQ(restored.num_charger_types(), original.num_charger_types());
  ASSERT_EQ(restored.num_obstacles(), original.num_obstacles());
  EXPECT_DOUBLE_EQ(restored.eps1(), original.eps1());
  for (std::size_t j = 0; j < original.num_devices(); ++j) {
    EXPECT_EQ(restored.device(j).pos, original.device(j).pos);
    EXPECT_EQ(restored.device(j).orientation, original.device(j).orientation);
    EXPECT_EQ(restored.device(j).type, original.device(j).type);
    EXPECT_EQ(restored.device(j).p_th, original.device(j).p_th);
  }
  for (std::size_t q = 0; q < original.num_charger_types(); ++q) {
    EXPECT_EQ(restored.charger_count(q), original.charger_count(q));
    EXPECT_EQ(restored.charger_type(q).angle, original.charger_type(q).angle);
  }
}

TEST(ScenarioIo, RoundTripPreservesPhysics) {
  // Power evaluations must be bit-identical after a round trip (precision 17
  // serialization).
  const auto original = test::small_paper_scenario(44, 2, 1);
  std::stringstream buffer;
  write_scenario(buffer, original);
  const auto restored = read_scenario(buffer);

  hipo::Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const Strategy s{{rng.uniform(0, 40), rng.uniform(0, 40)},
                     rng.angle(),
                     rng.below(original.num_charger_types())};
    for (std::size_t j = 0; j < original.num_devices(); ++j) {
      EXPECT_EQ(original.exact_power(s, j), restored.exact_power(s, j));
    }
  }
}

TEST(ScenarioIo, CommentsAndBlankLinesIgnored) {
  const auto original = test::simple_scenario();
  std::stringstream buffer;
  write_scenario(buffer, original);
  std::string text = "# a comment\n\n" + buffer.str() + "\n# trailing\n";
  std::stringstream patched(text);
  EXPECT_NO_THROW(read_scenario(patched));
}

TEST(ScenarioIo, MissingHeaderThrows) {
  std::stringstream buffer("region 0 0 1 1\n");
  EXPECT_THROW(read_scenario(buffer), hipo::ConfigError);
}

TEST(ScenarioIo, UnknownKeywordThrows) {
  std::stringstream buffer("hipo-scenario v1\nbanana 1 2 3\n");
  EXPECT_THROW(read_scenario(buffer), hipo::ConfigError);
}

TEST(ScenarioIo, MissingPairEntryThrows) {
  std::stringstream buffer(
      "hipo-scenario v1\n"
      "region 0 0 10 10\n"
      "eps1 0.3\n"
      "charger_type 1.0 1.0 5.0 2\n"
      "device_type 3.0\n");
  EXPECT_THROW(read_scenario(buffer), hipo::ConfigError);
}

TEST(ScenarioIo, ZeroTotalDeviceWeightThrows) {
  // Structurally valid but device-free: total device weight is zero, so the
  // normalized objective (Eq. 4's 1/N_o weighting) is undefined. Rejected
  // at the I/O boundary with a named ConfigError rather than producing
  // constant-zero utilities downstream.
  std::stringstream buffer(
      "hipo-scenario v1\n"
      "region 0 0 10 10\n"
      "eps1 0.3\n"
      "charger_type 1.0 1.0 5.0 2\n"
      "device_type 3.0\n"
      "pair 0 0 100 40\n");
  try {
    read_scenario(buffer);
    FAIL() << "expected ConfigError for zero total device weight";
  } catch (const hipo::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("total device weight"),
              std::string::npos)
        << e.what();
  }
}

TEST(ScenarioIo, TruncatedObstacleThrows) {
  std::stringstream buffer(
      "hipo-scenario v1\n"
      "region 0 0 10 10\n"
      "charger_type 1.0 1.0 5.0 2\n"
      "device_type 3.0\n"
      "pair 0 0 100 40\n"
      "obstacle 3 1 1 2 1\n");  // only 2 of 3 vertices
  EXPECT_THROW(read_scenario(buffer), hipo::ConfigError);
}

/// Minimal valid scenario text with one line swapped in for `patch` (or
/// appended when `patch` starts a new record). Keeps validation tests
/// focused on the single field they corrupt.
std::string scenario_text(const std::string& region = "region 0 0 10 10",
                          const std::string& eps1 = "eps1 0.3",
                          const std::string& charger =
                              "charger_type 1.0 1.0 5.0 2",
                          const std::string& device_type = "device_type 3.0",
                          const std::string& pair = "pair 0 0 100 40",
                          const std::string& extra = "") {
  std::string text = "hipo-scenario v1\n" + region + "\n" + eps1 + "\n" +
                     charger + "\n" + device_type + "\n" + pair + "\n";
  if (!extra.empty()) text += extra + "\n";
  return text;
}

void expect_rejected(const std::string& text, const std::string& needle) {
  std::stringstream buffer(text);
  try {
    read_scenario(buffer);
    FAIL() << "expected ConfigError containing '" << needle << "'";
  } catch (const hipo::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(ScenarioIoValidation, RejectsNonFiniteValues) {
  // Whether the stream parser or the finiteness check catches them, "nan"
  // and "inf" tokens must never produce a scenario.
  expect_rejected(
      scenario_text("region 0 0 10 10", "eps1 0.3",
                    "charger_type 1.0 1.0 5.0 2", "device_type 3.0",
                    "pair 0 0 100 40", "device nan 5 0 0 0.05"),
      "line 7");
  expect_rejected(scenario_text("region 0 0 inf 10"), "line 2");
  expect_rejected(scenario_text("region 0 0 10 10", "eps1 nan"), "line 3");
}

TEST(ScenarioIoValidation, RejectsInvertedRegion) {
  expect_rejected(scenario_text("region 10 10 0 0"), "hi > lo");
}

TEST(ScenarioIoValidation, RejectsNonPositiveEps1) {
  expect_rejected(scenario_text("region 0 0 10 10", "eps1 0"), "positive");
  expect_rejected(scenario_text("region 0 0 10 10", "eps1 -0.3"), "positive");
}

TEST(ScenarioIoValidation, RejectsBadChargerType) {
  // Zero sector angle.
  expect_rejected(scenario_text("region 0 0 10 10", "eps1 0.3",
                                "charger_type 0 1.0 5.0 2"),
                  "(0, 2pi]");
  // Angle beyond 2π.
  expect_rejected(scenario_text("region 0 0 10 10", "eps1 0.3",
                                "charger_type 7.0 1.0 5.0 2"),
                  "(0, 2pi]");
  // d_max <= d_min.
  expect_rejected(scenario_text("region 0 0 10 10", "eps1 0.3",
                                "charger_type 1.0 5.0 5.0 2"),
                  "d_max");
  // Negative d_min.
  expect_rejected(scenario_text("region 0 0 10 10", "eps1 0.3",
                                "charger_type 1.0 -1.0 5.0 2"),
                  "d_min");
  // Negative count.
  expect_rejected(scenario_text("region 0 0 10 10", "eps1 0.3",
                                "charger_type 1.0 1.0 5.0 -1"),
                  "count");
}

TEST(ScenarioIoValidation, RejectsBadDeviceType) {
  expect_rejected(
      scenario_text("region 0 0 10 10", "eps1 0.3",
                    "charger_type 1.0 1.0 5.0 2", "device_type 0"),
      "(0, 2pi]");
}

TEST(ScenarioIoValidation, RejectsNonPositivePairConstants) {
  expect_rejected(
      scenario_text("region 0 0 10 10", "eps1 0.3",
                    "charger_type 1.0 1.0 5.0 2", "device_type 3.0",
                    "pair 0 0 0 40"),
      "positive");
  expect_rejected(
      scenario_text("region 0 0 10 10", "eps1 0.3",
                    "charger_type 1.0 1.0 5.0 2", "device_type 3.0",
                    "pair 0 0 100 -40"),
      "positive");
}

TEST(ScenarioIoValidation, RejectsBadDevice) {
  expect_rejected(scenario_text("region 0 0 10 10", "eps1 0.3",
                                "charger_type 1.0 1.0 5.0 2",
                                "device_type 3.0", "pair 0 0 100 40",
                                "device 5 5 0 0 0"),
                  "p_th");
  expect_rejected(scenario_text("region 0 0 10 10", "eps1 0.3",
                                "charger_type 1.0 1.0 5.0 2",
                                "device_type 3.0", "pair 0 0 100 40",
                                "device 5 5 0 0 0.05 -1"),
                  "weight");
}

TEST(ScenarioIoValidation, RejectsSelfIntersectingObstacle) {
  // Asymmetric bowtie: nonzero area (passes the polygon constructor) but
  // edges 0 and 2 cross, so the simplicity check must name the line.
  expect_rejected(scenario_text("region 0 0 10 10", "eps1 0.3",
                                "charger_type 1.0 1.0 5.0 2",
                                "device_type 3.0", "pair 0 0 100 40",
                                "obstacle 4 1 1 4 2 3 1 1 3"),
                  "simple");
}

TEST(ScenarioIoValidation, RejectsZeroAreaObstacleWithLine) {
  // Collapsed polygon: the constructor's area check fires; the reader must
  // wrap it with the offending line number.
  expect_rejected(scenario_text("region 0 0 10 10", "eps1 0.3",
                                "charger_type 1.0 1.0 5.0 2",
                                "device_type 3.0", "pair 0 0 100 40",
                                "obstacle 3 1 1 2 2 3 3"),
                  "line 7");
}

TEST(ScenarioIoValidation, ErrorNamesOffendingLine) {
  expect_rejected(scenario_text("region 0 0 10 10", "eps1 0.3",
                                "charger_type 1.0 1.0 5.0 -1"),
                  "line 4");
}

TEST(ScenarioIo, FileRoundTrip) {
  const auto original = test::simple_scenario();
  const std::string path = testing::TempDir() + "hipo_io_test.scenario";
  write_scenario_file(path, original);
  const auto restored = read_scenario_file(path);
  EXPECT_EQ(restored.num_devices(), original.num_devices());
}

TEST(ScenarioIo, MissingFileThrows) {
  EXPECT_THROW(read_scenario_file("/nonexistent/x.hipo"), hipo::ConfigError);
}

TEST(PlacementIo, RoundTrip) {
  Placement placement{
      {{1.25, 3.5}, 0.75, 0},
      {{9.0, 2.0}, 5.5, 2},
  };
  std::stringstream buffer;
  write_placement(buffer, placement);
  const auto restored = read_placement(buffer);
  ASSERT_EQ(restored.size(), placement.size());
  for (std::size_t i = 0; i < placement.size(); ++i) {
    EXPECT_EQ(restored[i].pos, placement[i].pos);
    EXPECT_EQ(restored[i].orientation, placement[i].orientation);
    EXPECT_EQ(restored[i].type, placement[i].type);
  }
}

TEST(PlacementIo, EmptyPlacement) {
  std::stringstream buffer;
  write_placement(buffer, {});
  EXPECT_TRUE(read_placement(buffer).empty());
}

TEST(PlacementIo, BadKeywordThrows) {
  std::stringstream buffer("hipo-placement v1\ncharger 1 2 3 0\n");
  EXPECT_THROW(read_placement(buffer), hipo::ConfigError);
}

}  // namespace
}  // namespace hipo::model
