// Lemma 4.4: the number of feasible geometric areas is bounded — per
// device and charger type, the receiving area splits into O(ε₁⁻¹) rings ×
// O(1 + N_h·c) angular pieces. FeasibleRegion::enumerate_cells realizes
// exactly that decomposition; these tests pin its count to the analytic
// ingredients.
#include <gtest/gtest.h>

#include <cmath>

#include "src/discretize/feasible_region.hpp"
#include "src/util/rng.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::discretize {
namespace {

std::size_t count_cells(const model::Scenario& s, std::size_t j,
                        std::size_t q) {
  const ShadowMap shadow(s.device(j).pos, s.obstacles(),
                         s.charger_type(q).d_max);
  const FeasibleRegion region(s, j, q, shadow);
  return region.enumerate_cells().size();
}

/// The analytic ceiling for one (device, type) pair: angular events are the
/// 2 receiving boundaries + (obstacle vertices in range), radial events are
/// the ladder rungs + 1 shadow split per angular piece.
std::size_t analytic_bound(const model::Scenario& s, std::size_t j,
                           std::size_t q) {
  std::size_t vertex_events = 0;
  for (const auto& h : s.obstacles()) vertex_events += h.size();
  const std::size_t angular = 2 + vertex_events + 1;
  const std::size_t radial =
      s.ladder_for_device(q, j).num_rings() + 2;  // rungs + shadow split
  return angular * radial;
}

class Lemma44Test : public ::testing::TestWithParam<int> {};

TEST_P(Lemma44Test, CellCountWithinAnalyticBound) {
  const auto s = test::small_paper_scenario(
      static_cast<std::uint64_t>(GetParam()) + 1300, 2, 1);
  for (std::size_t j = 0; j < s.num_devices(); j += 5) {
    for (std::size_t q = 0; q < s.num_charger_types(); ++q) {
      EXPECT_LE(count_cells(s, j, q), analytic_bound(s, j, q))
          << "device " << j << " type " << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, Lemma44Test, ::testing::Range(0, 6));

TEST(Lemma44, CellCountGrowsAsEpsShrinks) {
  // O(ε₁⁻¹) radial dependence: halving ε roughly doubles the rungs.
  auto make = [](double eps) {
    model::GenOptions opt;
    opt.device_multiplier = 1;
    opt.eps = eps;
    Rng rng(77);
    return model::make_paper_scenario(opt, rng);
  };
  const auto coarse = make(0.30);
  const auto fine = make(0.04);
  std::size_t coarse_cells = 0, fine_cells = 0;
  for (std::size_t j = 0; j < coarse.num_devices(); ++j) {
    coarse_cells += count_cells(coarse, j, 2);
    fine_cells += count_cells(fine, j, 2);
  }
  EXPECT_GT(fine_cells, 2 * coarse_cells);
}

TEST(Lemma44, ObstacleFreeHasNoAngularSplits) {
  model::GenOptions opt;
  opt.num_obstacles = 0;
  opt.device_multiplier = 1;
  Rng rng(78);
  const auto s = model::make_paper_scenario(opt, rng);
  for (std::size_t j = 0; j < s.num_devices(); ++j) {
    const auto& dev = s.device(j);
    const double alpha = s.device_type(dev.type).angle;
    for (std::size_t q = 0; q < s.num_charger_types(); ++q) {
      // Without obstacles, cells = rings × (1 angular piece), except that
      // full-circle receivers have no boundary events at all.
      const std::size_t cells = count_cells(s, j, q);
      const std::size_t rings = s.ladder_for_device(q, j).num_rings();
      if (alpha < geom::kTwoPi) {
        // Some ring cells may be clipped by the region border; never more
        // than rings.
        EXPECT_LE(cells, rings);
      } else {
        EXPECT_LE(cells, rings);
      }
    }
  }
}

}  // namespace
}  // namespace hipo::discretize
