#include "src/ext/matching.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace hipo::ext {
namespace {

/// Brute-force maximum matching via recursion (small graphs).
std::size_t brute_force_matching(
    const std::vector<std::vector<std::size_t>>& adj, std::size_t right) {
  const std::size_t n = adj.size();
  std::vector<bool> used_r(right, false);
  std::size_t best = 0;
  // Recursive exploration over left vertices.
  std::function<void(std::size_t, std::size_t)> go = [&](std::size_t l,
                                                         std::size_t count) {
    best = std::max(best, count);
    if (l == n) return;
    go(l + 1, count);  // skip l
    for (std::size_t r : adj[l]) {
      if (!used_r[r]) {
        used_r[r] = true;
        go(l + 1, count + 1);
        used_r[r] = false;
      }
    }
  };
  go(0, 0);
  return best;
}

TEST(BipartiteGraph, EdgeValidation) {
  BipartiteGraph g(2, 2);
  EXPECT_THROW(g.add_edge(2, 0), hipo::ConfigError);
  EXPECT_THROW(g.add_edge(0, 2), hipo::ConfigError);
}

TEST(BipartiteGraph, EmptyGraphZeroMatching) {
  BipartiteGraph g(3, 3);
  EXPECT_EQ(g.max_matching(), 0u);
  EXPECT_FALSE(g.has_perfect_matching());
}

TEST(BipartiteGraph, PerfectMatchingOnIdentity) {
  BipartiteGraph g(3, 3);
  for (std::size_t i = 0; i < 3; ++i) g.add_edge(i, i);
  EXPECT_EQ(g.max_matching(), 3u);
  EXPECT_TRUE(g.has_perfect_matching());
}

TEST(BipartiteGraph, AugmentingPathNeeded) {
  // l0-{r0}, l1-{r0,r1}: greedy l1→r0 would block l0; matching must be 2.
  BipartiteGraph g(2, 2);
  g.add_edge(1, 0);
  g.add_edge(1, 1);
  g.add_edge(0, 0);
  EXPECT_EQ(g.max_matching(), 2u);
}

TEST(BipartiteGraph, HallViolationDetected) {
  // Two left vertices both only connect to r0.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(1, 0);
  EXPECT_EQ(g.max_matching(), 1u);
  EXPECT_FALSE(g.has_perfect_matching());
}

TEST(BipartiteGraph, ZeroLeftVerticesTriviallyPerfect) {
  BipartiteGraph g(0, 3);
  EXPECT_TRUE(g.has_perfect_matching());
}

TEST(BipartiteGraph, ParallelEdgesHarmless) {
  BipartiteGraph g(1, 1);
  g.add_edge(0, 0);
  g.add_edge(0, 0);
  EXPECT_EQ(g.max_matching(), 1u);
}

// Property: Hopcroft–Karp matches the brute-force optimum on random graphs.
class MatchingOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(MatchingOracleTest, MatchesBruteForce) {
  hipo::Rng rng(static_cast<std::uint64_t>(GetParam()) * 59 + 31);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t left = 1 + rng.below(7);
    const std::size_t right = 1 + rng.below(7);
    BipartiteGraph g(left, right);
    std::vector<std::vector<std::size_t>> adj(left);
    for (std::size_t l = 0; l < left; ++l) {
      for (std::size_t r = 0; r < right; ++r) {
        if (rng.uniform() < 0.35) {
          g.add_edge(l, r);
          adj[l].push_back(r);
        }
      }
    }
    EXPECT_EQ(g.max_matching(), brute_force_matching(adj, right));
  }
}

INSTANTIATE_TEST_SUITE_P(Random, MatchingOracleTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace hipo::ext
