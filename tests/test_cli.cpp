#include "src/util/cli.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/util/error.hpp"

namespace hipo {
namespace {

Cli make_cli(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Cli(static_cast<int>(args.size()), args.data());
}

TEST(Cli, SpaceSeparatedValue) {
  auto cli = make_cli({"--reps", "25"});
  EXPECT_EQ(cli.get_or("reps", 0), 25);
  cli.finish();
}

TEST(Cli, EqualsValue) {
  auto cli = make_cli({"--eps=0.25"});
  EXPECT_DOUBLE_EQ(cli.get_or("eps", 0.0), 0.25);
  cli.finish();
}

TEST(Cli, BooleanFlag) {
  auto cli = make_cli({"--csv"});
  EXPECT_TRUE(cli.has("csv"));
  EXPECT_FALSE(cli.has("other"));
  cli.finish();
}

TEST(Cli, DefaultsWhenAbsent) {
  auto cli = make_cli({});
  EXPECT_EQ(cli.get_or("reps", 15), 15);
  EXPECT_DOUBLE_EQ(cli.get_or("eps", 0.15), 0.15);
  EXPECT_EQ(cli.get_or("name", std::string("x")), "x");
  cli.finish();
}

TEST(Cli, UnknownFlagFailsFinish) {
  auto cli = make_cli({"--oops", "1"});
  EXPECT_THROW(cli.finish(), ConfigError);
}

TEST(Cli, ConsumedFlagPassesFinish) {
  auto cli = make_cli({"--reps", "3"});
  (void)cli.get("reps");
  EXPECT_NO_THROW(cli.finish());
}

TEST(Cli, NonNumericValueThrows) {
  auto cli = make_cli({"--reps", "abc"});
  EXPECT_THROW(cli.get_or("reps", 1), ConfigError);
}

TEST(Cli, TrailingGarbageIntegerThrows) {
  // std::stoi would silently parse this as 2000.
  auto cli = make_cli({"--iters", "2000abc"});
  EXPECT_THROW(cli.get_or("iters", 1), ConfigError);
}

TEST(Cli, TrailingGarbageDoubleThrows) {
  auto cli = make_cli({"--eps", "1e3x"});
  EXPECT_THROW(cli.get_or("eps", 1.0), ConfigError);
}

TEST(Cli, EmptyEqualsValueThrowsForNumeric) {
  auto cli = make_cli({"--iters="});
  EXPECT_THROW(cli.get_or("iters", 1), ConfigError);
  auto cli2 = make_cli({"--eps="});
  EXPECT_THROW(cli2.get_or("eps", 1.0), ConfigError);
}

TEST(Cli, EmptyEqualsValueIsEmptyString) {
  auto cli = make_cli({"--name="});
  EXPECT_EQ(cli.get_or("name", std::string("x")), "");
  cli.finish();
}

TEST(Cli, FullyConsumedNumericFormsParse) {
  auto cli = make_cli({"--iters", "-3", "--eps", "1e3", "--frac=.5"});
  EXPECT_EQ(cli.get_or("iters", 0), -3);
  EXPECT_DOUBLE_EQ(cli.get_or("eps", 0.0), 1000.0);
  EXPECT_DOUBLE_EQ(cli.get_or("frac", 0.0), 0.5);
  cli.finish();
}

TEST(Cli, PositionalArgumentRejected) {
  std::vector<const char*> args{"prog", "positional"};
  EXPECT_THROW(Cli(2, args.data()), ConfigError);
}

TEST(Cli, TwoBooleanFlagsInARow) {
  auto cli = make_cli({"--a", "--b"});
  EXPECT_TRUE(cli.has("a"));
  EXPECT_TRUE(cli.has("b"));
  cli.finish();
}

TEST(EnvIntOr, FallbackWhenUnset) {
  ::unsetenv("HIPO_TEST_ENV_VAR");
  EXPECT_EQ(env_int_or("HIPO_TEST_ENV_VAR", 42), 42);
}

TEST(EnvIntOr, ParsesValue) {
  ::setenv("HIPO_TEST_ENV_VAR", "17", 1);
  EXPECT_EQ(env_int_or("HIPO_TEST_ENV_VAR", 42), 17);
  ::unsetenv("HIPO_TEST_ENV_VAR");
}

TEST(EnvIntOr, GarbageFallsBack) {
  ::setenv("HIPO_TEST_ENV_VAR", "not-a-number", 1);
  EXPECT_EQ(env_int_or("HIPO_TEST_ENV_VAR", 42), 42);
  ::unsetenv("HIPO_TEST_ENV_VAR");
}

TEST(EnvIntOr, TrailingGarbageFallsBack) {
  ::setenv("HIPO_TEST_ENV_VAR", "17abc", 1);
  EXPECT_EQ(env_int_or("HIPO_TEST_ENV_VAR", 42), 42);
  ::unsetenv("HIPO_TEST_ENV_VAR");
}

}  // namespace
}  // namespace hipo
