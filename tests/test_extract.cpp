#include "src/pdcs/extract.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/util/rng.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::pdcs {
namespace {

TEST(ExtractAll, ProducesCandidatesForAllTypes) {
  const auto s = test::small_paper_scenario(11, 2, 1);
  const auto result = extract_all(s);
  EXPECT_FALSE(result.candidates.empty());
  EXPECT_EQ(result.per_type_counts.size(), s.num_charger_types());
  EXPECT_EQ(result.task_seconds.size(), s.num_devices());
  std::size_t total = 0;
  for (std::size_t c : result.per_type_counts) total += c;
  EXPECT_EQ(total, result.candidates.size());
  EXPECT_GE(result.raw_candidates, result.candidates.size());
}

TEST(ExtractAll, CandidatesGroupedByTypeInOrder) {
  const auto s = test::small_paper_scenario(12, 2, 1);
  const auto result = extract_all(s);
  // Candidates appear type-0 block first, then type-1, etc.
  std::size_t idx = 0;
  for (std::size_t q = 0; q < s.num_charger_types(); ++q) {
    for (std::size_t k = 0; k < result.per_type_counts[q]; ++k, ++idx) {
      EXPECT_EQ(result.candidates[idx].strategy.type, q);
    }
  }
}

TEST(ExtractAll, DeterministicAcrossRuns) {
  const auto s = test::small_paper_scenario(13, 2, 1);
  const auto r1 = extract_all(s);
  const auto r2 = extract_all(s);
  ASSERT_EQ(r1.candidates.size(), r2.candidates.size());
  for (std::size_t i = 0; i < r1.candidates.size(); ++i) {
    EXPECT_EQ(r1.candidates[i].strategy.pos, r2.candidates[i].strategy.pos);
    EXPECT_EQ(r1.candidates[i].covered, r2.candidates[i].covered);
  }
}

TEST(ExtractAll, ThreadPoolGivesSameCandidates) {
  const auto s = test::small_paper_scenario(14, 2, 1);
  const auto seq = extract_all(s);
  parallel::ThreadPool pool(4);
  const auto par = extract_all(s, ExtractOptions{}, &pool);
  ASSERT_EQ(seq.candidates.size(), par.candidates.size());
  for (std::size_t i = 0; i < seq.candidates.size(); ++i) {
    EXPECT_EQ(seq.candidates[i].strategy.pos, par.candidates[i].strategy.pos);
    EXPECT_EQ(seq.candidates[i].strategy.orientation,
              par.candidates[i].strategy.orientation);
    EXPECT_EQ(seq.candidates[i].covered, par.candidates[i].covered);
  }
}

TEST(ExtractAll, GlobalFilterRemovesDominated) {
  const auto s = test::small_paper_scenario(15, 2, 1);
  ExtractOptions no_filter;
  no_filter.global_filter = false;
  const auto unfiltered = extract_all(s, no_filter);
  const auto filtered = extract_all(s);
  EXPECT_LE(filtered.candidates.size(), unfiltered.candidates.size());
  // No kept candidate strictly dominated by another of the same type.
  for (std::size_t i = 0; i < filtered.candidates.size(); ++i) {
    for (std::size_t k = 0; k < filtered.candidates.size(); ++k) {
      if (i == k) continue;
      const auto& a = filtered.candidates[i];
      const auto& b = filtered.candidates[k];
      if (a.strategy.type != b.strategy.type) continue;
      EXPECT_FALSE(dominated_by(a, b) && !dominated_by(b, a));
    }
  }
}

TEST(ExtractAll, NoDevicesMeansNoCandidates) {
  auto cfg = test::simple_config();
  const model::Scenario s(std::move(cfg));
  const auto result = extract_all(s);
  EXPECT_TRUE(result.candidates.empty());
}

TEST(SimulatedDistributed, SingleMachineIsTotal) {
  const std::vector<double> tasks{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(simulated_distributed_seconds(tasks, 1), 6.0);
}

TEST(SimulatedDistributed, ManyMachinesIsMaxTask) {
  const std::vector<double> tasks{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(simulated_distributed_seconds(tasks, 3), 3.0);
  EXPECT_DOUBLE_EQ(simulated_distributed_seconds(tasks, 10), 3.0);
}

TEST(SimulatedDistributed, MonotoneInMachines) {
  hipo::Rng rng(5);
  std::vector<double> tasks;
  for (int i = 0; i < 40; ++i) tasks.push_back(rng.uniform(0.1, 2.0));
  double prev = simulated_distributed_seconds(tasks, 1);
  for (std::size_t m = 2; m <= 48; ++m) {
    const double cur = simulated_distributed_seconds(tasks, m);
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
}

TEST(SimulatedDistributed, LptWithinListSchedulingBound) {
  // Any list scheduler satisfies makespan <= total/m + (1 − 1/m)·max_task.
  hipo::Rng rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> tasks;
    const int n = 5 + static_cast<int>(rng.below(40));
    for (int i = 0; i < n; ++i) tasks.push_back(rng.uniform(0.01, 3.0));
    const auto m = 2 + rng.below(6);
    double total = 0.0, longest = 0.0;
    for (double t : tasks) {
      total += t;
      longest = std::max(longest, t);
    }
    const double bound =
        total / static_cast<double>(m) +
        (1.0 - 1.0 / static_cast<double>(m)) * longest;
    EXPECT_LE(simulated_distributed_seconds(tasks, m, true), bound + 1e-9);
  }
}

TEST(SimulatedDistributed, LptBeatsRoundRobinOnSkewedLoads) {
  // Round-robin stacks the two longest tasks on machine 0 here; LPT spreads
  // them.
  const std::vector<double> tasks{10.0, 1.0, 9.0, 1.0};
  EXPECT_LT(simulated_distributed_seconds(tasks, 2, true),
            simulated_distributed_seconds(tasks, 2, false));
}

TEST(SimulatedDistributed, EmptyTasksZero) {
  EXPECT_DOUBLE_EQ(simulated_distributed_seconds({}, 5), 0.0);
}

}  // namespace
}  // namespace hipo::pdcs
