// LosCache: memoized physics must be bit-identical to Scenario's, with the
// memo actually firing on repeated (position, device) queries.
#include "src/model/los_cache.hpp"

#include <gtest/gtest.h>

#include "src/model/scenario_gen.hpp"
#include "src/pdcs/point_case.hpp"
#include "src/spatial/grid_index.hpp"
#include "src/util/rng.hpp"

namespace hipo::model {
namespace {

using geom::Vec2;

Scenario paper_scenario(int num_obstacles, std::uint64_t seed) {
  GenOptions gen;
  gen.num_obstacles = num_obstacles;
  hipo::Rng rng(seed);
  return make_paper_scenario(gen, rng);
}

TEST(LosCache, MatchesScenarioPhysics) {
  const auto scenario = paper_scenario(8, 101);
  LosCache cache(scenario);
  hipo::Rng rng(5);
  for (int trial = 0; trial < 400; ++trial) {
    Strategy s;
    s.pos = {rng.uniform(0, 40), rng.uniform(0, 40)};
    s.orientation = rng.uniform(0, geom::kTwoPi);
    s.type = static_cast<std::size_t>(
        rng.uniform(0, static_cast<double>(scenario.num_charger_types())));
    if (s.type >= scenario.num_charger_types()) {
      s.type = scenario.num_charger_types() - 1;
    }
    const auto j = static_cast<std::size_t>(trial) % scenario.num_devices();
    EXPECT_EQ(cache.line_of_sight(s.pos, j),
              scenario.line_of_sight(s.pos, scenario.device(j).pos));
    EXPECT_EQ(cache.covers(s, j), scenario.covers(s, j));
    EXPECT_EQ(cache.exact_power(s, j), scenario.exact_power(s, j));
    EXPECT_EQ(cache.approx_power(s, j), scenario.approx_power(s, j));
  }
}

TEST(LosCache, HitsOnRepeatedPositions) {
  const auto scenario = paper_scenario(2, 7);
  LosCache cache(scenario);
  const Vec2 p{12.5, 17.25};
  const bool first = cache.line_of_sight(p, 0);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(cache.line_of_sight(p, 0), first);
  }
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 5u);
  EXPECT_EQ(cache.size(), 1u);
  // A position differing in the last bit is a distinct key.
  Vec2 p2 = p;
  p2.x = std::nextafter(p2.x, 100.0);
  cache.line_of_sight(p2, 0);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(LosCache, PlacementUtilityMatchesScenario) {
  const auto scenario = paper_scenario(8, 13);
  hipo::Rng rng(99);
  std::vector<Strategy> placement;
  for (int k = 0; k < 12; ++k) {
    Strategy s;
    s.pos = {rng.uniform(0, 40), rng.uniform(0, 40)};
    s.orientation = rng.uniform(0, geom::kTwoPi);
    s.type = static_cast<std::size_t>(k) % scenario.num_charger_types();
    placement.push_back(s);
    // Duplicate some positions with different orientations — the cache's
    // sweet spot; results must still be bit-identical.
    if (k % 3 == 0) {
      Strategy dup = s;
      dup.orientation = rng.uniform(0, geom::kTwoPi);
      placement.push_back(dup);
    }
  }
  LosCache cache(scenario);
  EXPECT_EQ(cache.placement_utility(placement),
            scenario.placement_utility(placement));
  for (std::size_t j = 0; j < scenario.num_devices(); ++j) {
    LosCache fresh(scenario);
    EXPECT_EQ(fresh.total_exact_power(placement, j),
              scenario.total_exact_power(placement, j));
  }
}

TEST(LosCache, PointCaseExtractionUnchangedByCache) {
  const auto scenario = paper_scenario(8, 21);
  std::vector<Vec2> points;
  for (std::size_t j = 0; j < scenario.num_devices(); ++j) {
    points.push_back(scenario.device(j).pos);
  }
  const spatial::GridIndex devices(scenario.region(), std::move(points));
  hipo::Rng rng(3);
  for (int trial = 0; trial < 60; ++trial) {
    const Vec2 p{rng.uniform(0, 40), rng.uniform(0, 40)};
    for (std::size_t q = 0; q < scenario.num_charger_types(); ++q) {
      const auto pool = devices.query_radius(
          p, scenario.charger_type(q).d_max + geom::kCoverEps);
      LosCache cache(scenario);
      const auto with = pdcs::extract_point_case(scenario, q, p, pool, &cache);
      const auto without = pdcs::extract_point_case(scenario, q, p, pool);
      ASSERT_EQ(with.size(), without.size());
      for (std::size_t i = 0; i < with.size(); ++i) {
        EXPECT_EQ(with[i].strategy.orientation, without[i].strategy.orientation);
        EXPECT_EQ(with[i].covered, without[i].covered);
        EXPECT_EQ(with[i].powers, without[i].powers);
      }
    }
  }
}

}  // namespace
}  // namespace hipo::model
