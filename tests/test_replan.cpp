// core::DeltaSession: the operational layer over the incremental re-solve —
// cold construction equals core::solve, every apply() couples the new
// placement to a min-switching-cost redeployment plan from the previous one.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "src/core/replan.hpp"
#include "src/core/solver.hpp"
#include "src/ext/redeploy.hpp"
#include "src/model/scenario.hpp"
#include "src/util/error.hpp"
#include "tests/test_helpers.hpp"

namespace hipo {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_placements_identical(const model::Placement& a,
                                 const model::Placement& b,
                                 const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(bits(a[i].pos.x), bits(b[i].pos.x)) << label << " slot " << i;
    EXPECT_EQ(bits(a[i].pos.y), bits(b[i].pos.y)) << label << " slot " << i;
    EXPECT_EQ(bits(a[i].orientation), bits(b[i].orientation))
        << label << " slot " << i;
    EXPECT_EQ(a[i].type, b[i].type) << label << " slot " << i;
  }
}

TEST(ReplanOptions, RejectsOptionCombinationsWithNoIncrementalPath) {
  core::SolveOptions local;
  local.local_search = true;
  EXPECT_THROW(core::replan_options(local), ConfigError);

  core::SolveOptions legacy;
  legacy.gain_engine = opt::GainEngine::kLegacy;
  EXPECT_THROW(core::replan_options(legacy), ConfigError);

  const core::SolveOptions plain;
  const auto replan = core::replan_options(plain);
  EXPECT_EQ(replan.delta.mode, plain.greedy);
  EXPECT_EQ(replan.delta.quantize, plain.gain_quantize);
}

TEST(DeltaSession, ColdConstructionMatchesSolve) {
  const auto scenario = test::small_paper_scenario(11);
  const core::DeltaSession session(scenario.to_config());
  const auto cold = core::solve(scenario);
  expect_placements_identical(session.placement(), cold.placement, "cold");
}

TEST(DeltaSession, ApplyCouplesReplanToARedeploymentPlan) {
  const auto scenario = test::small_paper_scenario(11);
  core::DeltaSession session(scenario.to_config());
  const model::Placement before = session.placement();
  const std::size_t num_types = scenario.num_charger_types();

  opt::DeltaOp op;
  op.kind = opt::DeltaOp::Kind::kRemoveDevice;
  op.index = 0;
  const auto result = session.apply(op);

  // The new placement is the session's and bit-identical to a cold solve of
  // the mutated scenario.
  expect_placements_identical(result.placement, session.placement(), "apply");
  const model::Scenario mutated{
      model::Scenario::Config(session.solver().config())};
  expect_placements_identical(result.placement,
                              core::solve(mutated).placement, "vs cold");
  EXPECT_EQ(bits(result.utility),
            bits(session.solver().result().exact_utility));
  EXPECT_GT(result.stats.tasks_total, 0u);

  // The redeployment plan is a consistent partial matching between the two
  // placements: every old charger either transfers or is recalled, every
  // new slot is either transferred into or freshly deployed, and the two
  // direction maps agree.
  const auto& plan = result.redeploy;
  ASSERT_EQ(plan.to_of.size(), before.size());
  ASSERT_EQ(plan.from_of.size(), result.placement.size());
  EXPECT_EQ(plan.transferred + plan.recalled, before.size());
  EXPECT_EQ(plan.transferred + plan.deployed, result.placement.size());
  EXPECT_GE(plan.total_cost, 0.0);
  EXPECT_GE(plan.max_cost, 0.0);
  for (std::size_t i = 0; i < plan.to_of.size(); ++i) {
    if (plan.to_of[i] == ext::kUnassigned) continue;
    ASSERT_LT(plan.to_of[i], plan.from_of.size());
    EXPECT_EQ(plan.from_of[plan.to_of[i]], i);
    EXPECT_EQ(before[i].type, result.placement[plan.to_of[i]].type);
    EXPECT_LT(before[i].type, num_types);
  }

  // A second delta replans from the post-first-delta placement.
  opt::DeltaOp move;
  move.kind = opt::DeltaOp::Kind::kMoveDevice;
  move.index = 0;
  move.pos = session.scenario().devices()[0].pos;
  move.pos.x += 0.5;
  const model::Placement mid = session.placement();
  const auto second = session.apply(move);
  ASSERT_EQ(second.redeploy.to_of.size(), mid.size());
}

TEST(DeltaSession, InvalidOpLeavesSessionUsable) {
  const auto scenario = test::small_paper_scenario(11);
  core::DeltaSession session(scenario.to_config());
  const model::Placement before = session.placement();

  opt::DeltaOp bad;
  bad.kind = opt::DeltaOp::Kind::kRemoveDevice;
  bad.index = 10'000;
  EXPECT_THROW(session.apply(bad), ConfigError);
  expect_placements_identical(session.placement(), before, "after throw");

  opt::DeltaOp ok;
  ok.kind = opt::DeltaOp::Kind::kRemoveDevice;
  ok.index = 0;
  EXPECT_NO_THROW(session.apply(ok));
}

}  // namespace
}  // namespace hipo
