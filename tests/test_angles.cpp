#include "src/geometry/angles.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.hpp"

namespace hipo::geom {
namespace {

TEST(NormAngle, CanonicalRange) {
  EXPECT_NEAR(norm_angle(0.0), 0.0, 1e-15);
  EXPECT_NEAR(norm_angle(kTwoPi), 0.0, 1e-15);
  EXPECT_NEAR(norm_angle(-kPi / 2.0), 1.5 * kPi, 1e-12);
  EXPECT_NEAR(norm_angle(5.0 * kTwoPi + 1.0), 1.0, 1e-12);
}

TEST(NormAngle, AlwaysInRange) {
  hipo::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double a = norm_angle(rng.uniform(-100.0, 100.0));
    EXPECT_GE(a, 0.0);
    EXPECT_LT(a, kTwoPi);
  }
}

TEST(CcwDelta, Basic) {
  EXPECT_NEAR(ccw_delta(0.0, kPi / 2.0), kPi / 2.0, 1e-12);
  EXPECT_NEAR(ccw_delta(kPi / 2.0, 0.0), 1.5 * kPi, 1e-12);
  EXPECT_NEAR(ccw_delta(1.0, 1.0), 0.0, 1e-12);
}

TEST(AngleDistance, SymmetricAndBounded) {
  hipo::Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double a = rng.uniform(-10.0, 10.0);
    const double b = rng.uniform(-10.0, 10.0);
    const double d = angle_distance(a, b);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, kPi + 1e-12);
    EXPECT_NEAR(d, angle_distance(b, a), 1e-12);
  }
}

TEST(AngleDistance, WrapAround) {
  EXPECT_NEAR(angle_distance(0.1, kTwoPi - 0.1), 0.2, 1e-12);
}

TEST(AngleInterval, ContainsInterior) {
  const AngleInterval iv(1.0, 1.0);
  EXPECT_TRUE(iv.contains(1.0));
  EXPECT_TRUE(iv.contains(1.5));
  EXPECT_TRUE(iv.contains(2.0));
  EXPECT_FALSE(iv.contains(2.1));
  EXPECT_FALSE(iv.contains(0.9));
}

TEST(AngleInterval, WrapsPastTwoPi) {
  const auto iv = AngleInterval::from_to(kTwoPi - 0.5, 0.5);
  EXPECT_NEAR(iv.width, 1.0, 1e-12);
  EXPECT_TRUE(iv.contains(0.0));
  EXPECT_TRUE(iv.contains(kTwoPi - 0.25));
  EXPECT_TRUE(iv.contains(0.25));
  EXPECT_FALSE(iv.contains(kPi));
}

TEST(AngleInterval, FullContainsEverything) {
  const auto iv = AngleInterval::full();
  EXPECT_TRUE(iv.is_full());
  for (double a = 0.0; a < kTwoPi; a += 0.1) EXPECT_TRUE(iv.contains(a));
}

TEST(AngleInterval, MidAndEnd) {
  const AngleInterval iv(kTwoPi - 1.0, 2.0);
  EXPECT_NEAR(iv.end(), 1.0, 1e-12);
  EXPECT_NEAR(iv.mid(), 0.0, 1e-12);
}

TEST(AngleIntervalSet, UnionMergesOverlap) {
  AngleIntervalSet s;
  s.insert(AngleInterval(0.0, 1.0));
  s.insert(AngleInterval(0.5, 1.0));
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_NEAR(s.measure(), 1.5, 1e-12);
}

TEST(AngleIntervalSet, DisjointKept) {
  AngleIntervalSet s;
  s.insert(AngleInterval(0.0, 0.5));
  s.insert(AngleInterval(2.0, 0.5));
  EXPECT_EQ(s.intervals().size(), 2u);
  EXPECT_NEAR(s.measure(), 1.0, 1e-12);
}

TEST(AngleIntervalSet, WrapJoin) {
  AngleIntervalSet s;
  s.insert(AngleInterval::from_to(kTwoPi - 0.3, 0.1));
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_TRUE(s.contains(0.0));
  EXPECT_TRUE(s.contains(kTwoPi - 0.2));
  EXPECT_FALSE(s.contains(1.0));
}

TEST(AngleIntervalSet, ComplementOfEmptyIsFull) {
  AngleIntervalSet s;
  EXPECT_TRUE(s.complement().is_full());
}

TEST(AngleIntervalSet, ComplementOfFullIsEmpty) {
  AngleIntervalSet s(AngleInterval::full());
  EXPECT_TRUE(s.complement().empty());
}

TEST(AngleIntervalSet, SaturatesToFull) {
  AngleIntervalSet s;
  s.insert(AngleInterval(0.0, 4.0));
  s.insert(AngleInterval(3.0, 4.0));
  EXPECT_TRUE(s.is_full());
}

// Property: for random interval sets A and B, membership algebra holds at
// random probe angles.
class IntervalAlgebraTest : public ::testing::TestWithParam<int> {};

TEST_P(IntervalAlgebraTest, DeMorganAndMembership) {
  hipo::Rng rng(static_cast<std::uint64_t>(GetParam()));
  AngleIntervalSet a, b;
  const int na = 1 + static_cast<int>(rng.below(4));
  const int nb = 1 + static_cast<int>(rng.below(4));
  for (int i = 0; i < na; ++i)
    a.insert(AngleInterval(rng.angle(), rng.uniform(0.0, 2.5)));
  for (int i = 0; i < nb; ++i)
    b.insert(AngleInterval(rng.angle(), rng.uniform(0.0, 2.5)));

  const auto a_and_b = a.intersect(b);
  const auto a_or_b = a.unite(b);
  const auto not_a = a.complement();

  for (int probe = 0; probe < 500; ++probe) {
    const double t = rng.angle();
    const bool in_a = a.contains(t);
    const bool in_b = b.contains(t);
    // Skip probes within epsilon of any boundary (membership there is
    // legitimately ambiguous under floating point).
    bool near_boundary = false;
    for (const auto& set : {&a, &b}) {
      for (const auto& iv : set->intervals()) {
        if (angle_distance(t, iv.start) < 1e-9 ||
            angle_distance(t, iv.end()) < 1e-9)
          near_boundary = true;
      }
    }
    if (near_boundary) continue;
    EXPECT_EQ(a_and_b.contains(t), in_a && in_b) << "angle " << t;
    EXPECT_EQ(a_or_b.contains(t), in_a || in_b) << "angle " << t;
    EXPECT_EQ(not_a.contains(t), !in_a) << "angle " << t;
  }

  // Measure identities.
  EXPECT_NEAR(a.measure() + not_a.measure(), kTwoPi, 1e-9);
  EXPECT_NEAR(a_or_b.measure() + a_and_b.measure(),
              a.measure() + b.measure(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomSets, IntervalAlgebraTest,
                         ::testing::Range(0, 25));

TEST(AngleInterval, ContainsOwnBoundaries) {
  // Regression (found by hipo_fuzz): contains() used to apply its epsilon
  // only on the far side of the interval, so end() — whose normalization
  // can round the delta a few ulp past width — was sometimes reported
  // outside its own interval. Both boundaries now share kAngleEps.
  hipo::Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const AngleInterval iv(rng.angle(), rng.uniform(1e-6, kTwoPi));
    EXPECT_TRUE(iv.contains(iv.start))
        << "start=" << iv.start << " width=" << iv.width;
    EXPECT_TRUE(iv.contains(iv.end()))
        << "start=" << iv.start << " width=" << iv.width;
    EXPECT_TRUE(iv.contains(iv.mid()))
        << "start=" << iv.start << " width=" << iv.width;
  }
}

TEST(AngleInterval, BoundaryContainmentAcrossWrap) {
  // Interval crossing the 0/2π seam: both endpoints and angles just inside
  // either side of the seam are members; the antipode is not.
  const AngleInterval iv(kTwoPi - 0.25, 0.5);
  EXPECT_TRUE(iv.contains(iv.start));
  EXPECT_TRUE(iv.contains(iv.end()));
  EXPECT_TRUE(iv.contains(0.0));
  EXPECT_TRUE(iv.contains(kTwoPi - 1e-15));
  EXPECT_FALSE(iv.contains(kPi));
}

TEST(AngleIntervalSet, ContainsMemberBoundaries) {
  AngleIntervalSet set;
  set.insert(AngleInterval(0.3, 0.4));
  set.insert(AngleInterval(kTwoPi - 0.2, 0.3));  // wraps through 0
  for (const auto& iv : set.intervals()) {
    EXPECT_TRUE(set.contains(iv.start));
    EXPECT_TRUE(set.contains(iv.end()));
  }
}

}  // namespace
}  // namespace hipo::geom
