#include "src/fuzz/oracles.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/fuzz/generator.hpp"
#include "src/fuzz/shrink.hpp"
#include "src/model/io.hpp"
#include "src/util/rng.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::fuzz {
namespace {

TEST(FuzzGenerator, DeterministicPerSeed) {
  // Same seed → byte-identical scenario (the property that makes every
  // fuzz failure replayable from its seed alone).
  for (std::uint64_t seed : {1ull, 42ull, 987654321ull}) {
    const model::Scenario a(random_config(seed));
    const model::Scenario b(random_config(seed));
    std::stringstream sa, sb;
    model::write_scenario(sa, a);
    model::write_scenario(sb, b);
    EXPECT_EQ(sa.str(), sb.str()) << "seed " << seed;
  }
}

TEST(FuzzGenerator, SeedsProduceDistinctScenarios) {
  std::stringstream s1, s2;
  model::write_scenario(s1, model::Scenario(random_config(1)));
  model::write_scenario(s2, model::Scenario(random_config(2)));
  EXPECT_NE(s1.str(), s2.str());
}

TEST(FuzzGenerator, AlwaysConstructsValidScenarios) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    EXPECT_NO_THROW(model::Scenario(random_config(seed))) << "seed " << seed;
  }
}

TEST(FuzzOracles, AllPassOnHandBuiltScenarios) {
  EXPECT_FALSE(run_all(test::simple_scenario(), 7).has_value());
  EXPECT_FALSE(run_all(test::blocked_scenario(), 7).has_value());
}

TEST(FuzzOracles, AllEightRegistered) {
  const auto oracles = all_oracles();
  ASSERT_EQ(oracles.size(), 8u);
  EXPECT_STREQ(oracles[0].name, "line_of_sight");
  EXPECT_STREQ(oracles[4].name, "determinism");
  EXPECT_STREQ(oracles[5].name, "simd");
  EXPECT_STREQ(oracles[6].name, "delta");
  EXPECT_STREQ(oracles[7].name, "shard");
}

TEST(FuzzOracles, DeltaOracleExercisesTractableScenarios) {
  // simple_scenario is well inside the tractability gate (one charger type,
  // a handful of devices), so the delta oracle's churn loop genuinely runs —
  // this pins the oracle against silently skipping everything.
  for (std::uint64_t seed : {1ull, 9ull, 1234ull}) {
    const auto v = check_delta(test::simple_scenario(), seed);
    EXPECT_FALSE(v.has_value())
        << "seed " << seed << ": [" << v->oracle << "] " << v->detail;
  }
}

TEST(FuzzOracles, RunOracleConvertsEscapedExceptions) {
  // A throwing oracle is reported as a violation, not propagated: this is
  // what lets the shrinker minimize crashing inputs.
  const NamedOracle thrower{"thrower", [](const model::Scenario&,
                                          std::uint64_t)
                                           -> std::optional<Violation> {
                              throw std::logic_error("boom");
                            }};
  const auto v = run_oracle(thrower, test::simple_scenario(), 1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->oracle, "thrower");
  EXPECT_NE(v->detail.find("boom"), std::string::npos);
}

TEST(FuzzShrink, RemovesIrrelevantComponents) {
  // Oracle that fires iff the scenario has >= 2 devices: everything else
  // (obstacles, surplus devices) must shrink away.
  auto cfg = test::simple_config();
  cfg.devices = {test::device_at(10, 10), test::device_at(12, 10),
                 test::device_at(10, 13), test::device_at(5, 5)};
  cfg.obstacles = {geom::make_rect({1, 1}, {2, 2}),
                   geom::make_rect({17, 17}, {18, 18})};
  const ConfigOracle oracle =
      [](const model::Scenario& s) -> std::optional<Violation> {
    if (s.num_devices() >= 2) return Violation{"pair", "needs two devices"};
    return std::nullopt;
  };
  const auto result = shrink(cfg, oracle);
  EXPECT_EQ(result.violation.oracle, "pair");
  EXPECT_EQ(result.config.devices.size(), 2u);
  EXPECT_TRUE(result.config.obstacles.empty());
  EXPECT_GT(result.removed, 0);
}

TEST(FuzzShrink, KeepsViolationNameStable) {
  // An oracle whose name depends on the device count: shrinking from the
  // "three" violation must not wander to the "two" violation.
  auto cfg = test::simple_config();
  cfg.devices = {test::device_at(10, 10), test::device_at(12, 10),
                 test::device_at(10, 13)};
  const ConfigOracle oracle =
      [](const model::Scenario& s) -> std::optional<Violation> {
    if (s.num_devices() >= 3) return Violation{"three", ""};
    if (s.num_devices() == 2) return Violation{"two", ""};
    return std::nullopt;
  };
  const auto result = shrink(cfg, oracle);
  EXPECT_EQ(result.violation.oracle, "three");
  EXPECT_EQ(result.config.devices.size(), 3u);
}

TEST(FuzzCorpus, DeviceFreeScenarioRunsClean) {
  // The fully shrunken shape of fuzz-coverage-seed8752293627032535368: a
  // zero-budget charger type and no devices at all. Scenario *files* may no
  // longer be device-free (read_scenario rejects zero total device weight),
  // so the original reproducer is pinned here by direct construction — the
  // Scenario model itself still admits it and the whole pipeline must stay
  // graceful on it.
  model::Scenario::Config cfg;
  cfg.region = {{0.0, 0.0}, {32.540560520827874, 21.977738833193222}};
  cfg.eps1 = 0.4285714285714286;
  cfg.charger_types.push_back(
      {0.050000000000000003, 0.0, 11.490863303251409});
  cfg.charger_counts.push_back(0);
  cfg.device_types.push_back({6.2831853071795862});
  cfg.pair_params.push_back({65.145431877569365, 16.982660583388586});
  const model::Scenario scenario(std::move(cfg));
  const auto v = run_all(scenario, 1);
  EXPECT_FALSE(v.has_value()) << "[" << v->oracle << "] " << v->detail;
}

TEST(FuzzCorpus, AllPinnedCasesPass) {
  // Every shrunken reproducer in tests/corpus must stay green: each pins a
  // fixed bug (replayed with its recorded seed baked into the filename).
  const std::filesystem::path dir = std::filesystem::path(HIPO_SOURCE_DIR) /
                                    "tests" / "corpus";
  ASSERT_TRUE(std::filesystem::exists(dir));
  int replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".hipo") continue;
    const auto scenario = model::read_scenario_file(entry.path().string());
    const auto v = run_all(scenario, 1);
    EXPECT_FALSE(v.has_value())
        << entry.path().filename() << ": [" << v->oracle << "] " << v->detail;
    ++replayed;
  }
  EXPECT_GE(replayed, 4);
}

}  // namespace
}  // namespace hipo::fuzz
