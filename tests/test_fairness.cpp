#include "src/ext/fairness.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/opt/greedy.hpp"
#include "src/pdcs/extract.hpp"
#include "src/util/rng.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::ext {
namespace {

TEST(MinUtility, EmptyPlacementZero) {
  const auto s = test::simple_scenario();
  EXPECT_DOUBLE_EQ(min_utility(s, {}), 0.0);
}

TEST(MinUtility, MatchesPerDeviceMinimum) {
  const auto s = test::simple_scenario();
  const model::Placement p{{{13.0, 10.0}, geom::kPi, 0}};
  const auto per_dev = s.per_device_utility(p);
  double lo = 1.0;
  for (double u : per_dev) lo = std::min(lo, u);
  EXPECT_NEAR(min_utility(s, p), lo, 1e-12);
}

class FairnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = std::make_unique<model::Scenario>(test::simple_scenario());
    extraction_ = pdcs::extract_all(*scenario_);
    ASSERT_FALSE(extraction_.candidates.empty());
  }

  std::unique_ptr<model::Scenario> scenario_;
  pdcs::ExtractionResult extraction_;
};

TEST_F(FairnessTest, AnnealingProducesValidPlacement) {
  hipo::Rng rng(1);
  AnnealOptions opt;
  opt.iterations = 500;
  const auto r = maxmin_simulated_annealing(*scenario_,
                                            extraction_.candidates, rng, opt);
  scenario_->validate_placement(r.placement);
  EXPECT_GE(r.min_utility, 0.0);
  EXPECT_LE(r.min_utility, 1.0);
  EXPECT_GE(r.mean_utility, r.min_utility - 1e-12);
}

TEST_F(FairnessTest, AnnealingNotWorseThanInitialState) {
  // With zero iterations we get the deterministic initial state; more
  // iterations can only improve the best-seen min utility.
  hipo::Rng rng0(2), rng1(2);
  AnnealOptions none;
  none.iterations = 0;
  const auto base = maxmin_simulated_annealing(
      *scenario_, extraction_.candidates, rng0, none);
  AnnealOptions more;
  more.iterations = 2000;
  const auto improved = maxmin_simulated_annealing(
      *scenario_, extraction_.candidates, rng1, more);
  EXPECT_GE(improved.min_utility, base.min_utility - 1e-9);
}

TEST_F(FairnessTest, AnnealingValidatesOptions) {
  hipo::Rng rng(3);
  AnnealOptions bad;
  bad.cooling = 0.0;
  EXPECT_THROW(maxmin_simulated_annealing(*scenario_, extraction_.candidates,
                                          rng, bad),
               hipo::ConfigError);
}

TEST_F(FairnessTest, PsoReturnsFeasiblePlacement) {
  hipo::Rng rng(4);
  PsoOptions opt;
  opt.particles = 8;
  opt.iterations = 20;
  const auto r = maxmin_particle_swarm(*scenario_, rng, opt);
  for (const auto& s : r.placement) {
    EXPECT_TRUE(scenario_->position_feasible(s.pos));
  }
  EXPECT_GE(r.min_utility, 0.0);
}

TEST_F(FairnessTest, PsoImprovesWithIterations) {
  hipo::Rng rng_small(5), rng_large(5);
  PsoOptions tiny;
  tiny.particles = 6;
  tiny.iterations = 0;
  PsoOptions grown;
  grown.particles = 6;
  grown.iterations = 60;
  const auto a = maxmin_particle_swarm(*scenario_, rng_small, tiny);
  const auto b = maxmin_particle_swarm(*scenario_, rng_large, grown);
  EXPECT_GE(b.min_utility, a.min_utility - 1e-9);
}

TEST_F(FairnessTest, ProportionalFairnessValidPlacement) {
  const auto r = proportional_fairness_select(*scenario_,
                                              extraction_.candidates);
  scenario_->validate_placement(r.placement);
  EXPECT_GT(r.approx_utility, 0.0);
}

TEST_F(FairnessTest, ProportionalFairnessRaisesMinUtility) {
  // On a scenario with an isolated far device, log-utility weighting should
  // never produce a lower minimum utility than it gives mean-optimized
  // greedy weighting a chance to starve. (Weak sanity check: min utility of
  // the proportional solution is >= 0 and its mean is within 1 of greedy.)
  const auto prop = proportional_fairness_select(*scenario_,
                                                 extraction_.candidates);
  const auto mean_opt = opt::select_strategies(*scenario_,
                                               extraction_.candidates);
  EXPECT_GE(min_utility(*scenario_, prop.placement), 0.0);
  EXPECT_LE(std::abs(prop.exact_utility - mean_opt.exact_utility), 1.0);
}

}  // namespace
}  // namespace hipo::ext
