// Cross-parameter pipeline sweeps: every GenOptions knob the benchmark
// harness exercises must produce valid, bounded, deterministic solves at
// small scale — the fast CI version of the Fig. 11 sweeps.
#include <gtest/gtest.h>

#include "src/core/solver.hpp"
#include "src/model/scenario_gen.hpp"
#include "src/util/rng.hpp"

namespace hipo {
namespace {

struct Knob {
  const char* name;
  model::GenOptions options;
};

std::vector<Knob> knob_grid() {
  std::vector<Knob> knobs;
  const auto base = [] {
    model::GenOptions o;
    o.device_multiplier = 1;
    o.charger_multiplier = 1;
    return o;
  };
  {
    auto o = base();
    knobs.push_back({"default", o});
  }
  for (double scale : {0.6, 2.0}) {
    auto o = base();
    o.charge_angle_scale = scale;
    knobs.push_back({"charge_angle", o});
  }
  for (double scale : {0.6, 2.0}) {
    auto o = base();
    o.recv_angle_scale = scale;
    knobs.push_back({"recv_angle", o});
  }
  for (double scale : {0.0, 1.4}) {
    auto o = base();
    o.d_min_scale = scale;
    knobs.push_back({"d_min", o});
  }
  for (double scale : {0.6, 2.0}) {
    auto o = base();
    o.d_max_scale = scale;
    knobs.push_back({"d_max", o});
  }
  for (double pth : {0.02, 0.09}) {
    auto o = base();
    o.p_th = pth;
    knobs.push_back({"p_th", o});
  }
  for (double eps : {0.05, 0.45}) {
    auto o = base();
    o.eps = eps;
    knobs.push_back({"eps", o});
  }
  for (int nh : {0, 4}) {
    auto o = base();
    o.num_obstacles = nh;
    knobs.push_back({"obstacles", o});
  }
  {
    auto o = base();
    o.uniform_device_counts = true;
    o.p_th_type_offset = 0.01;
    knobs.push_back({"pth_offset", o});
  }
  return knobs;
}

class SweepKnobTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SweepKnobTest, SolvesValidlyAcrossSeeds) {
  const auto knob = knob_grid()[GetParam()];
  for (std::uint64_t seed : {1, 2}) {
    Rng rng(seed * 1009 + GetParam());
    const auto scenario = model::make_paper_scenario(knob.options, rng);
    const auto result = core::solve(scenario);
    scenario.validate_placement(result.placement);
    EXPECT_GE(result.utility, 0.0) << knob.name;
    EXPECT_LE(result.utility, 1.0 + 1e-12) << knob.name;
    EXPECT_LE(result.approx_utility, result.utility + 1e-9) << knob.name;
    EXPECT_LE(result.placement.size(), scenario.num_chargers()) << knob.name;
    // Every claimed candidate count is consistent.
    std::size_t per_type_total = 0;
    for (std::size_t c : result.extraction.per_type_counts)
      per_type_total += c;
    EXPECT_EQ(per_type_total, result.extraction.candidates.size())
        << knob.name;
  }
}

TEST_P(SweepKnobTest, DeterministicAcrossIdenticalRuns) {
  const auto knob = knob_grid()[GetParam()];
  Rng rng_a(77 + GetParam());
  Rng rng_b(77 + GetParam());
  const auto s1 = model::make_paper_scenario(knob.options, rng_a);
  const auto s2 = model::make_paper_scenario(knob.options, rng_b);
  const auto r1 = core::solve(s1);
  const auto r2 = core::solve(s2);
  EXPECT_DOUBLE_EQ(r1.utility, r2.utility) << knob.name;
}

INSTANTIATE_TEST_SUITE_P(AllKnobs, SweepKnobTest,
                         ::testing::Range(std::size_t{0},
                                          knob_grid().size()));

}  // namespace
}  // namespace hipo
