// Per-device weights: the generalization of the paper's uniform 1/N_o
// normalization to Σ w_j·U_j / Σ w_j.
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/solver.hpp"
#include "src/model/io.hpp"
#include "src/opt/greedy.hpp"
#include "src/pdcs/extract.hpp"
#include "tests/test_helpers.hpp"

namespace hipo {
namespace {

TEST(Weights, UniformWeightsMatchPaperObjective) {
  // weight = 1 everywhere reduces to (1/N_o)·Σ U_j.
  const auto s = test::simple_scenario();
  const model::Placement p{{{13.0, 10.0}, geom::kPi, 0}};
  const auto per_dev = s.per_device_utility(p);
  double sum = 0.0;
  for (double u : per_dev) sum += u;
  EXPECT_NEAR(s.placement_utility(p), sum / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.total_weight(), 3.0);
}

TEST(Weights, RejectsNonPositive) {
  auto cfg = test::simple_config();
  auto d = test::device_at(10, 10);
  d.weight = 0.0;
  cfg.devices = {d};
  EXPECT_THROW(model::Scenario(std::move(cfg)), ConfigError);
}

TEST(Weights, WeightedObjectiveFormula) {
  auto cfg = test::simple_config();
  auto heavy = test::device_at(10, 10);
  heavy.weight = 3.0;
  auto light = test::device_at(10, 16);  // out of reach of the placement
  cfg.devices = {heavy, light};
  const model::Scenario s(std::move(cfg));
  const model::Placement p{{{13.0, 10.0}, geom::kPi, 0}};
  const auto per_dev = s.per_device_utility(p);
  EXPECT_NEAR(s.placement_utility(p),
              (3.0 * per_dev[0] + 1.0 * per_dev[1]) / 4.0, 1e-12);
}

TEST(Weights, GreedyPrefersHeavyDevice) {
  // One charger, two devices too far apart to share it: the greedy must
  // serve whichever carries more weight.
  auto make = [](double w_left, double w_right) {
    auto cfg = test::simple_config();
    cfg.charger_counts = {1};
    auto left = test::device_at(5, 10);
    left.weight = w_left;
    auto right = test::device_at(15, 10);
    right.weight = w_right;
    cfg.devices = {left, right};
    return model::Scenario(std::move(cfg));
  };

  const auto favor_left = make(5.0, 1.0);
  const auto r1 = core::solve(favor_left);
  const auto u1 = favor_left.per_device_utility(r1.placement);
  EXPECT_GT(u1[0], 0.0);
  EXPECT_DOUBLE_EQ(u1[1], 0.0);

  const auto favor_right = make(1.0, 5.0);
  const auto r2 = core::solve(favor_right);
  const auto u2 = favor_right.per_device_utility(r2.placement);
  EXPECT_DOUBLE_EQ(u2[0], 0.0);
  EXPECT_GT(u2[1], 0.0);
}

TEST(Weights, ScalingAllWeightsIsInvariant) {
  // Multiplying every weight by a constant must not change the objective
  // or the greedy selection.
  auto make = [](double scale) {
    auto cfg = test::simple_config();
    for (auto pos : {std::pair{10.0, 10.0}, {12.0, 10.0}, {10.0, 13.0}}) {
      auto d = test::device_at(pos.first, pos.second);
      d.weight = scale * (1.0 + pos.first / 10.0);
      cfg.devices.push_back(d);
    }
    return model::Scenario(std::move(cfg));
  };
  const auto a = make(1.0);
  const auto b = make(7.5);
  const auto ra = core::solve(a);
  const auto rb = core::solve(b);
  EXPECT_NEAR(ra.utility, rb.utility, 1e-9);
  ASSERT_EQ(ra.placement.size(), rb.placement.size());
  for (std::size_t i = 0; i < ra.placement.size(); ++i) {
    EXPECT_EQ(ra.placement[i].pos, rb.placement[i].pos);
  }
}

TEST(Weights, SubmodularityPreserved) {
  auto cfg = test::simple_config();
  // Spread the devices so no single strategy dominates everything.
  int i = 0;
  for (auto pos : {std::pair{4.0, 4.0}, {16.0, 4.0}, {4.0, 16.0},
                   {16.0, 16.0}, {10.0, 10.0}}) {
    auto d = test::device_at(pos.first, pos.second);
    d.weight = 1.0 + i++;
    cfg.devices.push_back(d);
  }
  const model::Scenario s(std::move(cfg));
  const auto extraction = pdcs::extract_all(s);
  ASSERT_GE(extraction.candidates.size(), 2u);
  const opt::ChargingObjective f(s, extraction.candidates);
  // Diminishing returns: the gain of candidate 0 cannot grow after adding
  // candidate 1 (checked for every pair to be thorough).
  for (std::size_t a = 0; a < extraction.candidates.size(); ++a) {
    for (std::size_t b = 0; b < extraction.candidates.size(); ++b) {
      if (a == b) continue;
      opt::ChargingObjective::State small(f), big(f);
      big.add(b);
      EXPECT_GE(small.gain(a), big.gain(a) - 1e-12);
    }
  }
}

TEST(Weights, IoRoundTripPreservesWeights) {
  auto cfg = test::simple_config();
  auto d = test::device_at(10, 10);
  d.weight = 2.75;
  cfg.devices = {d};
  const model::Scenario original(std::move(cfg));
  std::stringstream buffer;
  model::write_scenario(buffer, original);
  const auto restored = model::read_scenario(buffer);
  EXPECT_DOUBLE_EQ(restored.device(0).weight, 2.75);
}

TEST(Weights, IoDefaultsMissingWeightToOne) {
  // Files written before the weight field default to 1.
  std::stringstream buffer(
      "hipo-scenario v1\n"
      "region 0 0 20 20\n"
      "eps1 0.3\n"
      "charger_type 1.5 1 5 2\n"
      "device_type 6.28\n"
      "pair 0 0 100 40\n"
      "device 10 10 0 0 0.05\n");
  const auto s = model::read_scenario(buffer);
  EXPECT_DOUBLE_EQ(s.device(0).weight, 1.0);
}

}  // namespace
}  // namespace hipo
