// The flat CSR coverage engine (opt::CoverageMatrix + the dirty-gain
// incremental State) against the legacy vector-of-vectors path: structural
// CSR invariants, bit-for-bit GreedyResult equivalence across greedy modes,
// objective kinds, thread counts, and the fuzz generator's adversarial
// scenarios, plus the dirty-bitset cache invariant the incremental argmax
// rests on.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <set>
#include <vector>

#include "src/fuzz/generator.hpp"
#include "src/model/scenario.hpp"
#include "src/opt/coverage_matrix.hpp"
#include "src/opt/greedy.hpp"
#include "src/opt/objective.hpp"
#include "src/parallel/thread_pool.hpp"
#include "src/pdcs/extract.hpp"
#include "tests/test_helpers.hpp"

namespace hipo {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_results_identical(const opt::GreedyResult& flat,
                              const opt::GreedyResult& legacy,
                              const std::string& label) {
  EXPECT_EQ(flat.selected, legacy.selected) << label;
  EXPECT_EQ(bits(flat.approx_utility), bits(legacy.approx_utility)) << label;
  EXPECT_EQ(bits(flat.exact_utility), bits(legacy.exact_utility)) << label;
  ASSERT_EQ(flat.placement.size(), legacy.placement.size()) << label;
  for (std::size_t i = 0; i < flat.placement.size(); ++i) {
    EXPECT_EQ(bits(flat.placement[i].pos.x), bits(legacy.placement[i].pos.x))
        << label << " slot " << i;
    EXPECT_EQ(bits(flat.placement[i].pos.y), bits(legacy.placement[i].pos.y))
        << label << " slot " << i;
    EXPECT_EQ(bits(flat.placement[i].orientation),
              bits(legacy.placement[i].orientation))
        << label << " slot " << i;
    EXPECT_EQ(flat.placement[i].type, legacy.placement[i].type)
        << label << " slot " << i;
  }
}

TEST(CoverageMatrix, MirrorsCandidatesExactly) {
  const auto scenario = test::small_paper_scenario(3, 2, 2);
  const auto extraction = pdcs::extract_all(scenario);
  const auto& cands = extraction.candidates;
  ASSERT_FALSE(cands.empty());

  const opt::CoverageMatrix matrix(cands, scenario.num_devices());
  ASSERT_EQ(matrix.num_rows(), cands.size());
  ASSERT_EQ(matrix.num_devices(), scenario.num_devices());

  std::size_t nnz = 0;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    const auto covered = matrix.covered(i);
    const auto powers = matrix.powers(i);
    ASSERT_EQ(covered.size(), cands[i].covered.size()) << "row " << i;
    ASSERT_EQ(powers.size(), cands[i].powers.size()) << "row " << i;
    for (std::size_t k = 0; k < covered.size(); ++k) {
      EXPECT_EQ(covered[k], cands[i].covered[k]) << "row " << i;
      EXPECT_EQ(bits(powers[k]), bits(cands[i].powers[k])) << "row " << i;
    }
    EXPECT_EQ(bits(matrix.strategy(i).pos.x), bits(cands[i].strategy.pos.x));
    EXPECT_EQ(matrix.strategy(i).type, cands[i].strategy.type);
    nnz += covered.size();
  }
  EXPECT_EQ(matrix.nnz(), nnz);
}

TEST(CoverageMatrix, InvertedIndexIsExactTranspose) {
  const auto scenario = test::small_paper_scenario(11, 2, 2);
  const auto extraction = pdcs::extract_all(scenario);
  const auto& cands = extraction.candidates;
  const opt::CoverageMatrix matrix(cands, scenario.num_devices());

  // row i covers j  ⟺  i ∈ rows_covering(j), with each list ascending.
  std::set<std::pair<std::size_t, std::size_t>> forward, inverted;
  for (std::size_t i = 0; i < matrix.num_rows(); ++i) {
    for (std::uint32_t j : matrix.covered(i)) forward.insert({i, j});
  }
  for (std::size_t j = 0; j < matrix.num_devices(); ++j) {
    const auto rows = matrix.rows_covering(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      if (k > 0) EXPECT_LT(rows[k - 1], rows[k]) << "device " << j;
      inverted.insert({rows[k], j});
    }
  }
  EXPECT_EQ(forward, inverted);
}

TEST(CoverageMatrix, EmptyPoolAndEmptyMatrix) {
  const opt::CoverageMatrix empty;
  EXPECT_EQ(empty.num_rows(), 0u);
  EXPECT_EQ(empty.num_devices(), 0u);
  EXPECT_EQ(empty.nnz(), 0u);

  const auto scenario = test::small_paper_scenario(1, 1, 1);
  const opt::CoverageMatrix no_rows({}, scenario.num_devices());
  EXPECT_EQ(no_rows.num_rows(), 0u);
  EXPECT_EQ(no_rows.num_devices(), scenario.num_devices());
  for (std::size_t j = 0; j < no_rows.num_devices(); ++j) {
    EXPECT_TRUE(no_rows.rows_covering(j).empty());
  }
}

// The headline equivalence: the CSR engine and the legacy path produce
// bit-identical GreedyResults across the fuzz generator's adversarial
// scenarios, every greedy mode, both objective kinds, and threads
// ∈ {0 (no pool), 1, 4}.
TEST(FlatVsLegacy, IdenticalOnAdversarialScenarios) {
  for (const std::uint64_t seed : {2ull, 9ull, 41ull, 77ull, 130ull}) {
    fuzz::GeneratorOptions gen;
    gen.adversarial_bias = 1.0;
    const model::Scenario scenario(fuzz::random_config(seed, gen));
    const auto extraction = pdcs::extract_all(scenario);

    for (const auto mode :
         {opt::GreedyMode::kPerType, opt::GreedyMode::kGlobal,
          opt::GreedyMode::kLazyGlobal}) {
      for (const auto kind :
           {opt::ObjectiveKind::kUtility, opt::ObjectiveKind::kLogUtility}) {
        for (const std::size_t workers : {0u, 1u, 4u}) {
          std::unique_ptr<parallel::ThreadPool> pool;
          if (workers > 0) {
            pool = std::make_unique<parallel::ThreadPool>(workers);
          }
          const auto flat = opt::select_strategies(
              scenario, extraction.candidates, mode, kind, pool.get(),
              opt::GainEngine::kFlatCsr);
          const auto legacy = opt::select_strategies(
              scenario, extraction.candidates, mode, kind, pool.get(),
              opt::GainEngine::kLegacy);
          expect_results_identical(
              flat, legacy,
              "seed " + std::to_string(seed) + " mode " +
                  std::to_string(static_cast<int>(mode)) + " kind " +
                  std::to_string(static_cast<int>(kind)) + " workers " +
                  std::to_string(workers));
        }
      }
    }
  }
}

// Same equivalence on the denser paper-style scenario, where the dirty set
// is a strict subset of the pool every round (the interesting regime for
// the incremental argmax).
TEST(FlatVsLegacy, IdenticalOnPaperScenario) {
  const auto scenario = test::small_paper_scenario(17, 2, 2);
  const auto extraction = pdcs::extract_all(scenario);
  parallel::ThreadPool pool(4);
  for (const auto mode : {opt::GreedyMode::kPerType, opt::GreedyMode::kGlobal,
                          opt::GreedyMode::kLazyGlobal}) {
    const auto flat = opt::select_strategies(
        scenario, extraction.candidates, mode, opt::ObjectiveKind::kUtility,
        &pool, opt::GainEngine::kFlatCsr);
    const auto legacy = opt::select_strategies(
        scenario, extraction.candidates, mode, opt::ObjectiveKind::kUtility,
        &pool, opt::GainEngine::kLegacy);
    expect_results_identical(flat, legacy,
                             "mode " + std::to_string(static_cast<int>(mode)));
  }
}

// The cache invariant the incremental greedy rests on: after any sequence
// of adds, every *clean* candidate's cached gain equals a fresh
// recomputation bit-for-bit, and every candidate sharing a device with the
// added row is marked dirty.
TEST(DirtyGain, CleanCacheEntriesAreBitExact) {
  const auto scenario = test::small_paper_scenario(29, 2, 2);
  const auto extraction = pdcs::extract_all(scenario);
  const auto& cands = extraction.candidates;
  ASSERT_GE(cands.size(), 4u);

  const opt::ChargingObjective objective(scenario, cands,
                                         opt::ObjectiveKind::kUtility,
                                         opt::GainEngine::kFlatCsr);
  const opt::CoverageMatrix& matrix = *objective.matrix();
  opt::ChargingObjective::State state(objective);
  state.enable_incremental();
  ASSERT_TRUE(state.incremental());

  // Prime every cache entry.
  for (std::size_t i = 0; i < cands.size(); ++i) {
    EXPECT_EQ(bits(state.gain(i)), bits(state.recompute_gain(i))) << i;
    EXPECT_FALSE(state.is_dirty(i)) << i;
  }

  // Greedy-ish adds: every add must dirty exactly the inverted-index
  // reachability set (checked as a superset: re-marking is idempotent),
  // and every clean row must still match a fresh recomputation exactly.
  std::vector<std::size_t> picks = {0, cands.size() / 2, cands.size() - 1};
  for (std::size_t pick : picks) {
    std::set<std::size_t> reachable;
    for (std::uint32_t j : matrix.covered(pick)) {
      for (std::uint32_t r : matrix.rows_covering(j)) reachable.insert(r);
    }
    state.add(pick);
    for (std::size_t r : reachable) {
      EXPECT_TRUE(state.is_dirty(r)) << "pick " << pick << " row " << r;
    }
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (state.is_dirty(i)) continue;
      EXPECT_EQ(bits(state.gain(i)), bits(state.recompute_gain(i)))
          << "pick " << pick << " clean row " << i;
    }
    // Re-reading a dirty row refreshes it to the exact fresh value.
    for (std::size_t r : reachable) {
      const double fresh = state.recompute_gain(r);
      EXPECT_EQ(bits(state.gain(r)), bits(fresh)) << "row " << r;
      EXPECT_FALSE(state.is_dirty(r)) << "row " << r;
    }
  }
}

// A State that never opts into incremental tracking (exhaustive / local
// search usage) behaves identically to the legacy engine's State.
TEST(DirtyGain, NonIncrementalStateMatchesLegacy) {
  const auto scenario = test::small_paper_scenario(8, 2, 2);
  const auto extraction = pdcs::extract_all(scenario);
  const auto& cands = extraction.candidates;

  const opt::ChargingObjective flat(scenario, cands,
                                    opt::ObjectiveKind::kUtility,
                                    opt::GainEngine::kFlatCsr);
  const opt::ChargingObjective legacy(scenario, cands,
                                      opt::ObjectiveKind::kUtility,
                                      opt::GainEngine::kLegacy);
  opt::ChargingObjective::State sf(flat);
  opt::ChargingObjective::State sl(legacy);
  EXPECT_FALSE(sf.incremental());
  for (std::size_t i = 0; i < cands.size(); ++i) {
    EXPECT_EQ(bits(sf.gain(i)), bits(sl.gain(i))) << i;
  }
  for (std::size_t pick : {std::size_t{1}, cands.size() / 3}) {
    sf.add(pick);
    sl.add(pick);
    EXPECT_EQ(bits(sf.value()), bits(sl.value()));
    for (std::size_t i = 0; i < cands.size(); ++i) {
      EXPECT_EQ(bits(sf.gain(i)), bits(sl.gain(i))) << i;
    }
  }
}

// Device-free scenario: the hoisted early-out returns a clean zero for
// every candidate instead of dividing by the zero total weight.
TEST(DirtyGain, DeviceFreeScenarioHasZeroGains) {
  model::Scenario::Config cfg;
  cfg.region = {{0.0, 0.0}, {10.0, 10.0}};
  cfg.eps1 = 0.3;
  cfg.charger_types.push_back({1.0, 0.5, 4.0});
  cfg.charger_counts.push_back(2);
  cfg.device_types.push_back({3.0});
  cfg.pair_params.push_back({100.0, 40.0});
  const model::Scenario scenario(std::move(cfg));

  pdcs::Candidate cand;
  cand.strategy = {{1.0, 1.0}, 0.0, 0};
  const std::vector<pdcs::Candidate> cands{cand};
  for (const auto engine :
       {opt::GainEngine::kFlatCsr, opt::GainEngine::kLegacy}) {
    const opt::ChargingObjective objective(
        scenario, cands, opt::ObjectiveKind::kUtility, engine);
    opt::ChargingObjective::State state(objective);
    EXPECT_EQ(state.gain(0), 0.0);
    state.add(0);
    EXPECT_EQ(state.value(), 0.0);
  }
}

}  // namespace
}  // namespace hipo
