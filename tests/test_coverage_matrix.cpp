// The flat CSR coverage engine (opt::CoverageMatrix + the dirty-gain
// incremental State) against the legacy vector-of-vectors path: structural
// CSR invariants, bit-for-bit GreedyResult equivalence across greedy modes,
// objective kinds, thread counts, and the fuzz generator's adversarial
// scenarios, plus the dirty-bitset cache invariant the incremental argmax
// rests on.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <set>
#include <vector>

#include "src/fuzz/generator.hpp"
#include "src/model/scenario.hpp"
#include "src/opt/coverage_matrix.hpp"
#include "src/opt/greedy.hpp"
#include "src/opt/objective.hpp"
#include "src/parallel/thread_pool.hpp"
#include "src/pdcs/extract.hpp"
#include "tests/test_helpers.hpp"

namespace hipo {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_results_identical(const opt::GreedyResult& flat,
                              const opt::GreedyResult& legacy,
                              const std::string& label) {
  EXPECT_EQ(flat.selected, legacy.selected) << label;
  EXPECT_EQ(bits(flat.approx_utility), bits(legacy.approx_utility)) << label;
  EXPECT_EQ(bits(flat.exact_utility), bits(legacy.exact_utility)) << label;
  ASSERT_EQ(flat.placement.size(), legacy.placement.size()) << label;
  for (std::size_t i = 0; i < flat.placement.size(); ++i) {
    EXPECT_EQ(bits(flat.placement[i].pos.x), bits(legacy.placement[i].pos.x))
        << label << " slot " << i;
    EXPECT_EQ(bits(flat.placement[i].pos.y), bits(legacy.placement[i].pos.y))
        << label << " slot " << i;
    EXPECT_EQ(bits(flat.placement[i].orientation),
              bits(legacy.placement[i].orientation))
        << label << " slot " << i;
    EXPECT_EQ(flat.placement[i].type, legacy.placement[i].type)
        << label << " slot " << i;
  }
}

TEST(CoverageMatrix, MirrorsCandidatesExactly) {
  const auto scenario = test::small_paper_scenario(3, 2, 2);
  const auto extraction = pdcs::extract_all(scenario);
  const auto& cands = extraction.candidates;
  ASSERT_FALSE(cands.empty());

  const opt::CoverageMatrix matrix(cands, scenario.num_devices());
  ASSERT_EQ(matrix.num_rows(), cands.size());
  ASSERT_EQ(matrix.num_devices(), scenario.num_devices());

  std::size_t nnz = 0;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    const auto covered = matrix.covered(i);
    const auto powers = matrix.powers(i);
    ASSERT_EQ(covered.size(), cands[i].covered.size()) << "row " << i;
    ASSERT_EQ(powers.size(), cands[i].powers.size()) << "row " << i;
    for (std::size_t k = 0; k < covered.size(); ++k) {
      EXPECT_EQ(covered[k], cands[i].covered[k]) << "row " << i;
      EXPECT_EQ(bits(powers[k]), bits(cands[i].powers[k])) << "row " << i;
    }
    EXPECT_EQ(bits(matrix.strategy(i).pos.x), bits(cands[i].strategy.pos.x));
    EXPECT_EQ(matrix.strategy(i).type, cands[i].strategy.type);
    nnz += covered.size();
  }
  EXPECT_EQ(matrix.nnz(), nnz);
}

TEST(CoverageMatrix, InvertedIndexIsExactTranspose) {
  const auto scenario = test::small_paper_scenario(11, 2, 2);
  const auto extraction = pdcs::extract_all(scenario);
  const auto& cands = extraction.candidates;
  const opt::CoverageMatrix matrix(cands, scenario.num_devices());

  // row i covers j  ⟺  i ∈ rows_covering(j), with each list ascending.
  std::set<std::pair<std::size_t, std::size_t>> forward, inverted;
  for (std::size_t i = 0; i < matrix.num_rows(); ++i) {
    for (std::uint32_t j : matrix.covered(i)) forward.insert({i, j});
  }
  for (std::size_t j = 0; j < matrix.num_devices(); ++j) {
    const auto rows = matrix.rows_covering(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      if (k > 0) EXPECT_LT(rows[k - 1], rows[k]) << "device " << j;
      inverted.insert({rows[k], j});
    }
  }
  EXPECT_EQ(forward, inverted);
}

TEST(CoverageMatrix, EmptyPoolAndEmptyMatrix) {
  const opt::CoverageMatrix empty;
  EXPECT_EQ(empty.num_rows(), 0u);
  EXPECT_EQ(empty.num_devices(), 0u);
  EXPECT_EQ(empty.nnz(), 0u);

  const auto scenario = test::small_paper_scenario(1, 1, 1);
  const opt::CoverageMatrix no_rows(std::span<const pdcs::Candidate>{},
                                    scenario.num_devices());
  EXPECT_EQ(no_rows.num_rows(), 0u);
  EXPECT_EQ(no_rows.num_devices(), scenario.num_devices());
  for (std::size_t j = 0; j < no_rows.num_devices(); ++j) {
    EXPECT_TRUE(no_rows.rows_covering(j).empty());
  }
}

// The headline equivalence: the CSR engine and the legacy path produce
// bit-identical GreedyResults across the fuzz generator's adversarial
// scenarios, every greedy mode, both objective kinds, and threads
// ∈ {0 (no pool), 1, 4}.
TEST(FlatVsLegacy, IdenticalOnAdversarialScenarios) {
  for (const std::uint64_t seed : {2ull, 9ull, 41ull, 77ull, 130ull}) {
    fuzz::GeneratorOptions gen;
    gen.adversarial_bias = 1.0;
    const model::Scenario scenario(fuzz::random_config(seed, gen));
    const auto extraction = pdcs::extract_all(scenario);

    for (const auto mode :
         {opt::GreedyMode::kPerType, opt::GreedyMode::kGlobal,
          opt::GreedyMode::kLazyGlobal}) {
      for (const auto kind :
           {opt::ObjectiveKind::kUtility, opt::ObjectiveKind::kLogUtility}) {
        for (const std::size_t workers : {0u, 1u, 4u}) {
          std::unique_ptr<parallel::ThreadPool> pool;
          if (workers > 0) {
            pool = std::make_unique<parallel::ThreadPool>(workers);
          }
          const auto flat = opt::select_strategies(
              scenario, extraction.candidates, mode, kind, pool.get(),
              opt::GainEngine::kFlatCsr);
          const auto legacy = opt::select_strategies(
              scenario, extraction.candidates, mode, kind, pool.get(),
              opt::GainEngine::kLegacy);
          expect_results_identical(
              flat, legacy,
              "seed " + std::to_string(seed) + " mode " +
                  std::to_string(static_cast<int>(mode)) + " kind " +
                  std::to_string(static_cast<int>(kind)) + " workers " +
                  std::to_string(workers));
        }
      }
    }
  }
}

// Same equivalence on the denser paper-style scenario, where the dirty set
// is a strict subset of the pool every round (the interesting regime for
// the incremental argmax).
TEST(FlatVsLegacy, IdenticalOnPaperScenario) {
  const auto scenario = test::small_paper_scenario(17, 2, 2);
  const auto extraction = pdcs::extract_all(scenario);
  parallel::ThreadPool pool(4);
  for (const auto mode : {opt::GreedyMode::kPerType, opt::GreedyMode::kGlobal,
                          opt::GreedyMode::kLazyGlobal}) {
    const auto flat = opt::select_strategies(
        scenario, extraction.candidates, mode, opt::ObjectiveKind::kUtility,
        &pool, opt::GainEngine::kFlatCsr);
    const auto legacy = opt::select_strategies(
        scenario, extraction.candidates, mode, opt::ObjectiveKind::kUtility,
        &pool, opt::GainEngine::kLegacy);
    expect_results_identical(flat, legacy,
                             "mode " + std::to_string(static_cast<int>(mode)));
  }
}

// The cache invariant the incremental greedy rests on: after any sequence
// of adds, every *clean* candidate's cached gain equals a fresh
// recomputation bit-for-bit, and every candidate sharing a device with the
// added row is marked dirty.
TEST(DirtyGain, CleanCacheEntriesAreBitExact) {
  const auto scenario = test::small_paper_scenario(29, 2, 2);
  const auto extraction = pdcs::extract_all(scenario);
  const auto& cands = extraction.candidates;
  ASSERT_GE(cands.size(), 4u);

  const opt::ChargingObjective objective(scenario, cands,
                                         opt::ObjectiveKind::kUtility,
                                         opt::GainEngine::kFlatCsr);
  const opt::CoverageMatrix& matrix = *objective.matrix();
  opt::ChargingObjective::State state(objective);
  state.enable_incremental();
  ASSERT_TRUE(state.incremental());

  // Prime every cache entry.
  for (std::size_t i = 0; i < cands.size(); ++i) {
    EXPECT_EQ(bits(state.gain(i)), bits(state.recompute_gain(i))) << i;
    EXPECT_FALSE(state.is_dirty(i)) << i;
  }

  // Greedy-ish adds: every add must dirty exactly the inverted-index
  // reachability set (checked as a superset: re-marking is idempotent),
  // and every clean row must still match a fresh recomputation exactly.
  std::vector<std::size_t> picks = {0, cands.size() / 2, cands.size() - 1};
  for (std::size_t pick : picks) {
    std::set<std::size_t> reachable;
    for (std::uint32_t j : matrix.covered(pick)) {
      for (std::uint32_t r : matrix.rows_covering(j)) reachable.insert(r);
    }
    state.add(pick);
    for (std::size_t r : reachable) {
      EXPECT_TRUE(state.is_dirty(r)) << "pick " << pick << " row " << r;
    }
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (state.is_dirty(i)) continue;
      EXPECT_EQ(bits(state.gain(i)), bits(state.recompute_gain(i)))
          << "pick " << pick << " clean row " << i;
    }
    // Re-reading a dirty row refreshes it to the exact fresh value.
    for (std::size_t r : reachable) {
      const double fresh = state.recompute_gain(r);
      EXPECT_EQ(bits(state.gain(r)), bits(fresh)) << "row " << r;
      EXPECT_FALSE(state.is_dirty(r)) << "row " << r;
    }
  }
}

// A State that never opts into incremental tracking (exhaustive / local
// search usage) behaves identically to the legacy engine's State.
TEST(DirtyGain, NonIncrementalStateMatchesLegacy) {
  const auto scenario = test::small_paper_scenario(8, 2, 2);
  const auto extraction = pdcs::extract_all(scenario);
  const auto& cands = extraction.candidates;

  const opt::ChargingObjective flat(scenario, cands,
                                    opt::ObjectiveKind::kUtility,
                                    opt::GainEngine::kFlatCsr);
  const opt::ChargingObjective legacy(scenario, cands,
                                      opt::ObjectiveKind::kUtility,
                                      opt::GainEngine::kLegacy);
  opt::ChargingObjective::State sf(flat);
  opt::ChargingObjective::State sl(legacy);
  EXPECT_FALSE(sf.incremental());
  for (std::size_t i = 0; i < cands.size(); ++i) {
    EXPECT_EQ(bits(sf.gain(i)), bits(sl.gain(i))) << i;
  }
  for (std::size_t pick : {std::size_t{1}, cands.size() / 3}) {
    sf.add(pick);
    sl.add(pick);
    EXPECT_EQ(bits(sf.value()), bits(sl.value()));
    for (std::size_t i = 0; i < cands.size(); ++i) {
      EXPECT_EQ(bits(sf.gain(i)), bits(sl.gain(i))) << i;
    }
  }
}

// Device-free scenario: the hoisted early-out returns a clean zero for
// every candidate instead of dividing by the zero total weight.
TEST(DirtyGain, DeviceFreeScenarioHasZeroGains) {
  model::Scenario::Config cfg;
  cfg.region = {{0.0, 0.0}, {10.0, 10.0}};
  cfg.eps1 = 0.3;
  cfg.charger_types.push_back({1.0, 0.5, 4.0});
  cfg.charger_counts.push_back(2);
  cfg.device_types.push_back({3.0});
  cfg.pair_params.push_back({100.0, 40.0});
  const model::Scenario scenario(std::move(cfg));

  pdcs::Candidate cand;
  cand.strategy = {{1.0, 1.0}, 0.0, 0};
  const std::vector<pdcs::Candidate> cands{cand};
  for (const auto engine :
       {opt::GainEngine::kFlatCsr, opt::GainEngine::kLegacy}) {
    const opt::ChargingObjective objective(
        scenario, cands, opt::ObjectiveKind::kUtility, engine);
    opt::ChargingObjective::State state(objective);
    EXPECT_EQ(state.gain(0), 0.0);
    state.add(0);
    EXPECT_EQ(state.value(), 0.0);
  }
}

// --- in-place patching (the DeltaSolver substrate) -------------------------

/// Hand-built candidate with distinguishable payloads: powers are derived
/// from `tag` so any row mixup shows up as a bitwise mismatch.
pdcs::Candidate patch_cand(std::vector<std::size_t> covered, double tag,
                           std::size_t type = 0) {
  pdcs::Candidate c;
  c.strategy = {{tag, tag * 2.0 + 0.25}, tag * 0.125, type};
  c.covered = std::move(covered);
  c.powers.reserve(c.covered.size());
  for (std::size_t k = 0; k < c.covered.size(); ++k) {
    c.powers.push_back(tag + 0.5 * static_cast<double>(k + 1));
  }
  return c;
}

void expect_transpose_consistent(const opt::CoverageMatrix& m) {
  std::set<std::pair<std::size_t, std::size_t>> forward, inverted;
  for (std::size_t i = 0; i < m.num_rows(); ++i) {
    for (std::uint32_t j : m.covered(i)) forward.insert({i, j});
  }
  for (std::size_t j = 0; j < m.num_devices(); ++j) {
    const auto rows = m.rows_covering(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      if (k > 0) EXPECT_LT(rows[k - 1], rows[k]) << "device " << j;
      inverted.insert({rows[k], j});
    }
  }
  EXPECT_EQ(forward, inverted);
}

TEST(CoverageMatrixPatch, InsertOnlyMatchesFreshBuild) {
  const std::vector<pdcs::Candidate> base = {patch_cand({0, 2}, 1.0),
                                             patch_cand({1}, 2.0)};
  const pdcs::Candidate x = patch_cand({0, 1, 3}, 3.0);
  const pdcs::Candidate y = patch_cand({3}, 4.0);

  opt::CoverageMatrix m(base, 4);
  // New row order: base[0], x, base[1], y.
  const std::vector<opt::CoverageMatrix::RowInsert> inserts = {{1, &x},
                                                               {3, &y}};
  const auto stats = m.apply_patch(inserts, 4);
  EXPECT_EQ(stats.rows_inserted, 2u);
  EXPECT_EQ(stats.rows_kept, 2u);
  EXPECT_EQ(stats.rows_erased, 0u);
  // base[1] moves right (a row is spliced in ahead of it), so the patch
  // must stage rather than memmove in place.
  EXPECT_FALSE(stats.in_place);

  const std::vector<pdcs::Candidate> expected = {base[0], x, base[1], y};
  EXPECT_TRUE(m.same_as(opt::CoverageMatrix(expected, 4)));
  expect_transpose_consistent(m);
}

TEST(CoverageMatrixPatch, EraseOnlyCompactsInPlace) {
  const std::vector<pdcs::Candidate> base = {
      patch_cand({0}, 1.0), patch_cand({1, 2}, 2.0), patch_cand({0, 3}, 3.0),
      patch_cand({2}, 4.0)};
  opt::CoverageMatrix m(base, 4);
  m.mark_dead(1);
  m.mark_dead(2);
  EXPECT_EQ(m.num_dead(), 2u);
  // Tombstoned rows stay readable until the patch compacts them away.
  EXPECT_TRUE(m.is_dead(1));
  ASSERT_EQ(m.covered(1).size(), 2u);
  EXPECT_EQ(m.covered(1)[1], 2u);

  const auto stats = m.apply_patch({}, 4);
  EXPECT_EQ(stats.rows_erased, 2u);
  EXPECT_EQ(stats.rows_kept, 2u);
  EXPECT_EQ(stats.rows_inserted, 0u);
  EXPECT_TRUE(stats.in_place);
  EXPECT_EQ(m.num_dead(), 0u);
  EXPECT_FALSE(m.is_dead(0));

  const std::vector<pdcs::Candidate> expected = {base[0], base[3]};
  EXPECT_TRUE(m.same_as(opt::CoverageMatrix(expected, 4)));
  expect_transpose_consistent(m);
}

TEST(CoverageMatrixPatch, MixedPatchAndChainingMatchFreshBuilds) {
  std::vector<pdcs::Candidate> live = {patch_cand({0, 1}, 1.0),
                                       patch_cand({2}, 2.0),
                                       patch_cand({1, 3}, 3.0)};
  opt::CoverageMatrix m(live, 4);

  // Patch 1: drop the middle row, splice a fat row in at the front.
  const pdcs::Candidate x = patch_cand({0, 1, 2, 3}, 5.0);
  m.mark_dead(1);
  m.apply_patch({{{0, &x}}}, 4);
  live = {x, live[0], live[2]};
  EXPECT_TRUE(m.same_as(opt::CoverageMatrix(live, 4)));
  expect_transpose_consistent(m);

  // Patch 2: replace the tail row (erase + insert at the same position).
  const pdcs::Candidate y = patch_cand({3}, 6.0);
  m.mark_dead(2);
  m.apply_patch({{{2, &y}}}, 4);
  live = {live[0], live[1], y};
  EXPECT_TRUE(m.same_as(opt::CoverageMatrix(live, 4)));
  expect_transpose_consistent(m);

  // Patch 3: erase everything, insert one row — still equivalent.
  m.mark_dead(0);
  m.mark_dead(1);
  m.mark_dead(2);
  const pdcs::Candidate z = patch_cand({0}, 7.0);
  m.apply_patch({{{0, &z}}}, 4);
  EXPECT_TRUE(m.same_as(opt::CoverageMatrix({{z}}, 4)));
  expect_transpose_consistent(m);
}

TEST(CoverageMatrixPatch, RemovedDeviceRemapsKeptColumns) {
  // Device 2 disappears: rows covering it die, surviving ids > 2 shift down.
  const std::vector<pdcs::Candidate> base = {
      patch_cand({0, 1}, 1.0), patch_cand({1, 3}, 2.0),
      patch_cand({2}, 3.0), patch_cand({3}, 4.0)};
  opt::CoverageMatrix m(base, 4);
  m.mark_dead(2);
  const auto stats = m.apply_patch({}, 3, /*removed_device=*/2);
  EXPECT_EQ(stats.rows_erased, 1u);
  EXPECT_EQ(m.num_devices(), 3u);

  std::vector<pdcs::Candidate> expected = {base[0], base[1], base[3]};
  expected[1].covered = {1, 2};
  expected[2].covered = {2};
  EXPECT_TRUE(m.same_as(opt::CoverageMatrix(expected, 3)));
  expect_transpose_consistent(m);
}

TEST(CoverageMatrixPatch, TombstonedMatrixNeverEqualsAClean) {
  const std::vector<pdcs::Candidate> base = {patch_cand({0}, 1.0),
                                             patch_cand({1}, 2.0)};
  opt::CoverageMatrix a(base, 2);
  opt::CoverageMatrix b(base, 2);
  EXPECT_TRUE(a.same_as(b));
  a.mark_dead(0);
  a.mark_dead(0);  // idempotent
  EXPECT_EQ(a.num_dead(), 1u);
  EXPECT_FALSE(a.same_as(b));
  EXPECT_FALSE(b.same_as(a));
}

// End-to-end: greedy over a patched matrix is bit-identical to greedy over
// a matrix built cold from the surviving candidates — with and without a
// thread pool (the warm overload's pooled argmax path).
TEST(CoverageMatrixPatch, PatchedMatrixDrivesIdenticalGreedy) {
  const auto scenario = test::small_paper_scenario(23, 2, 2);
  const auto extraction = pdcs::extract_all(scenario);
  const auto& cands = extraction.candidates;
  ASSERT_GE(cands.size(), 8u);

  opt::CoverageMatrix patched(cands, scenario.num_devices());
  std::vector<pdcs::Candidate> survivors;
  std::uint32_t new_row = 0;
  std::vector<opt::CoverageMatrix::RowInsert> inserts;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (i % 3 == 1) {
      patched.mark_dead(i);
    } else {
      survivors.push_back(cands[i]);
      ++new_row;
    }
  }
  // Splice the first two dead ones back at the end (re-insertion exercises
  // the mixed path on real extraction rows).
  std::size_t spliced = 0;
  for (std::size_t i = 0; i < cands.size() && spliced < 2; ++i) {
    if (i % 3 == 1) {
      survivors.push_back(cands[i]);
      inserts.push_back({new_row++, &cands[i]});
      ++spliced;
    }
  }
  patched.apply_patch(inserts, scenario.num_devices());
  const opt::CoverageMatrix cold(survivors, scenario.num_devices());
  ASSERT_TRUE(patched.same_as(cold));

  parallel::ThreadPool pool(4);
  for (parallel::ThreadPool* workers : {(parallel::ThreadPool*)nullptr,
                                        &pool}) {
    const auto warm = opt::select_strategies(
        scenario, patched, opt::GreedyMode::kLazyGlobal,
        opt::ObjectiveKind::kUtility, workers);
    const auto fresh = opt::select_strategies(
        scenario, cold, opt::GreedyMode::kLazyGlobal,
        opt::ObjectiveKind::kUtility, workers);
    expect_results_identical(warm, fresh,
                             workers ? "pooled" : "sequential");
  }
}

}  // namespace
}  // namespace hipo
