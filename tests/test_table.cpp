#include "src/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/util/error.hpp"

namespace hipo {
namespace {

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table(std::vector<std::string>{}), ConfigError);
}

TEST(Table, AddBeforeRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.add("x"), InvariantError);
}

TEST(Table, TooManyCellsThrows) {
  Table t({"a", "b"});
  t.row().add("1").add("2");
  EXPECT_THROW(t.add("3"), InvariantError);
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.row().add("x").add(1.5, 2);
  t.row().add("longer").add(10.25, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("10.25"), std::string::npos);
  // Separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  Table t({"a", "b"});
  t.row().add("plain").add(2LL);
  t.row().add("with,comma").add("with\"quote");
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(),
            "a,b\nplain,2\n\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Table, NumericFormatting) {
  EXPECT_EQ(format_double(1.23456, 3), "1.235");
  EXPECT_EQ(format_double(2.0, 1), "2.0");
  Table t({"x"});
  t.row().add(0.5, 4);
  EXPECT_EQ(t.rows()[0][0], "0.5000");
}

TEST(Table, IntegerOverloads) {
  Table t({"a", "b", "c"});
  t.row().add(7).add(std::size_t{8}).add(-3LL);
  EXPECT_EQ(t.rows()[0][0], "7");
  EXPECT_EQ(t.rows()[0][1], "8");
  EXPECT_EQ(t.rows()[0][2], "-3");
}

TEST(Table, WriteCsvFileBadPathThrows) {
  Table t({"a"});
  t.row().add("1");
  EXPECT_THROW(t.write_csv_file("/nonexistent-dir/x.csv"), ConfigError);
}

TEST(Table, NumRows) {
  Table t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.row().add("1");
  t.row().add("2");
  EXPECT_EQ(t.num_rows(), 2u);
}

}  // namespace
}  // namespace hipo
