#include "src/opt/exhaustive.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/pdcs/extract.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::opt {
namespace {

std::vector<pdcs::Candidate> synthetic_candidates(
    const model::Scenario& s, hipo::Rng& rng, std::size_t count) {
  std::vector<pdcs::Candidate> out;
  for (std::size_t i = 0; i < count; ++i) {
    pdcs::Candidate c;
    c.strategy.type = rng.below(s.num_charger_types());
    c.strategy.pos = {rng.uniform(1, 19), rng.uniform(1, 19)};
    for (std::size_t j = 0; j < s.num_devices(); ++j) {
      if (rng.uniform() < 0.4) {
        c.covered.push_back(j);
        c.powers.push_back(rng.uniform(0.004, 0.05));
      }
    }
    out.push_back(c);
  }
  return out;
}

/// Plain mask enumeration (oracle).
double mask_optimum(const model::Scenario& s,
                    std::span<const pdcs::Candidate> cands) {
  const ChargingObjective f(s, cands);
  const PartitionMatroid matroid = placement_matroid(s, cands);
  double best = 0.0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << cands.size());
       ++mask) {
    std::vector<std::size_t> set;
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (mask & (std::size_t{1} << i)) set.push_back(i);
    }
    if (!matroid.independent(set)) continue;
    best = std::max(best, f.value(set));
  }
  return best;
}

TEST(ExactSelect, MatchesMaskEnumeration) {
  const auto s = test::simple_scenario();
  for (int trial = 0; trial < 10; ++trial) {
    hipo::Rng rng(static_cast<std::uint64_t>(trial) * 67 + 5);
    const auto cands = synthetic_candidates(s, rng, 14);
    const auto exact = exact_select(s, cands);
    EXPECT_NEAR(exact.result.approx_utility, mask_optimum(s, cands), 1e-12)
        << "trial " << trial;
    // Selection actually evaluates to the reported value.
    const ChargingObjective f(s, cands);
    EXPECT_NEAR(f.value(exact.result.selected), exact.result.approx_utility,
                1e-12);
  }
}

TEST(ExactSelect, AtLeastGreedy) {
  const auto s = test::small_paper_scenario(301, 1, 1);
  auto extraction = pdcs::extract_all(s);
  if (extraction.candidates.size() > 24) extraction.candidates.resize(24);
  const auto greedy = select_strategies(s, extraction.candidates,
                                        GreedyMode::kLazyGlobal);
  const auto exact = exact_select(s, extraction.candidates);
  EXPECT_GE(exact.result.approx_utility, greedy.approx_utility - 1e-12);
  // Theorem 4.2 sanity on a real extraction.
  EXPECT_GE(greedy.approx_utility, 0.5 * exact.result.approx_utility - 1e-9);
}

TEST(ExactSelect, EmptyCandidates) {
  const auto s = test::simple_scenario();
  const std::vector<pdcs::Candidate> none;
  const auto exact = exact_select(s, none);
  EXPECT_TRUE(exact.result.selected.empty());
  EXPECT_DOUBLE_EQ(exact.result.approx_utility, 0.0);
}

TEST(ExactSelect, RespectsBudget) {
  const auto s = test::simple_scenario();  // budget 2 of type 0
  hipo::Rng rng(9);
  const auto cands = synthetic_candidates(s, rng, 12);
  const auto exact = exact_select(s, cands);
  EXPECT_LE(exact.result.selected.size(), 2u);
  s.validate_placement(exact.result.placement);
}

TEST(ExactSelect, NodeCapThrows) {
  const auto s = test::simple_scenario();
  hipo::Rng rng(10);
  const auto cands = synthetic_candidates(s, rng, 18);
  ExactOptions opt;
  opt.max_nodes = 3;
  EXPECT_THROW(exact_select(s, cands, opt), hipo::ConfigError);
}

TEST(ExactSelect, PrunesAggressively) {
  // Branch-and-bound must explore far fewer nodes than 2^n.
  const auto s = test::simple_scenario();
  hipo::Rng rng(11);
  const auto cands = synthetic_candidates(s, rng, 20);
  const auto exact = exact_select(s, cands);
  EXPECT_LT(exact.nodes_explored, std::size_t{1} << 20);
}

}  // namespace
}  // namespace hipo::opt
