#include "src/opt/local_search.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/core/solver.hpp"
#include "src/pdcs/extract.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::opt {
namespace {

struct Setup {
  std::unique_ptr<model::Scenario> scenario;
  pdcs::ExtractionResult extraction;
  GreedyResult greedy;
};

Setup make_setup(std::uint64_t seed) {
  Setup s;
  s.scenario = std::make_unique<model::Scenario>(
      test::small_paper_scenario(seed, 1, 1));
  s.extraction = pdcs::extract_all(*s.scenario);
  s.greedy = select_strategies(*s.scenario, s.extraction.candidates,
                               GreedyMode::kPerType);
  return s;
}

TEST(LocalSearch, NeverWorseThanStart) {
  for (std::uint64_t seed : {201, 202, 203, 204}) {
    const auto s = make_setup(seed);
    const auto improved = local_search_improve(
        *s.scenario, s.extraction.candidates, s.greedy);
    EXPECT_GE(improved.result.approx_utility,
              s.greedy.approx_utility - 1e-12);
    s.scenario->validate_placement(improved.result.placement);
    EXPECT_EQ(improved.result.selected.size(), s.greedy.selected.size());
  }
}

TEST(LocalSearch, ConvergesToSwapLocalOptimum) {
  const auto s = make_setup(205);
  const auto improved = local_search_improve(
      *s.scenario, s.extraction.candidates, s.greedy);
  // Re-running from the improved solution finds nothing further.
  const auto again = local_search_improve(
      *s.scenario, s.extraction.candidates, improved.result);
  EXPECT_EQ(again.swaps, 0);
  EXPECT_NEAR(again.result.approx_utility, improved.result.approx_utility,
              1e-12);
}

TEST(LocalSearch, ImprovesDeliberatelyBadStart) {
  const auto s = make_setup(206);
  // Start from the *worst* feasible selection: the last candidates of each
  // type instead of greedy picks.
  GreedyResult bad;
  std::vector<int> left(s.scenario->num_charger_types());
  for (std::size_t q = 0; q < left.size(); ++q) {
    left[q] = s.scenario->charger_count(q);
  }
  for (std::size_t i = s.extraction.candidates.size(); i-- > 0;) {
    const auto q = s.extraction.candidates[i].strategy.type;
    if (left[q] > 0) {
      --left[q];
      bad.selected.push_back(i);
    }
  }
  const ChargingObjective f(*s.scenario, s.extraction.candidates);
  bad.approx_utility = f.value(bad.selected);

  const auto improved = local_search_improve(
      *s.scenario, s.extraction.candidates, bad);
  EXPECT_GT(improved.swaps, 0);
  EXPECT_GT(improved.result.approx_utility, bad.approx_utility);
}

TEST(LocalSearch, RespectsMaxRounds) {
  const auto s = make_setup(207);
  GreedyResult empty_start;  // no selections → nothing to swap
  LocalSearchOptions opt;
  opt.max_rounds = 0;
  const auto r = local_search_improve(*s.scenario, s.extraction.candidates,
                                      s.greedy, ObjectiveKind::kUtility, opt);
  EXPECT_EQ(r.swaps, 0);
  EXPECT_EQ(r.rounds, 0);
}

TEST(LocalSearch, EmptyStartIsNoop) {
  const auto s = make_setup(208);
  GreedyResult empty_start;
  const auto r = local_search_improve(*s.scenario, s.extraction.candidates,
                                      empty_start);
  EXPECT_EQ(r.swaps, 0);
  EXPECT_TRUE(r.result.placement.empty());
}

TEST(LocalSearch, OutOfRangeSelectionThrows) {
  const auto s = make_setup(209);
  GreedyResult bad;
  bad.selected = {s.extraction.candidates.size() + 5};
  EXPECT_THROW(local_search_improve(*s.scenario, s.extraction.candidates,
                                    bad),
               hipo::ConfigError);
}

TEST(LocalSearch, SolverFlagNeverHurts) {
  for (std::uint64_t seed : {210, 211}) {
    const auto scenario = test::small_paper_scenario(seed, 2, 1);
    core::SolveOptions plain;
    core::SolveOptions with_ls;
    with_ls.local_search = true;
    const double base = core::solve(scenario, plain).approx_utility;
    const double improved = core::solve(scenario, with_ls).approx_utility;
    EXPECT_GE(improved, base - 1e-12);
  }
}

TEST(LocalSearch, LogUtilityKindSupported) {
  const auto s = make_setup(212);
  const auto greedy_log = select_strategies(
      *s.scenario, s.extraction.candidates, GreedyMode::kPerType,
      ObjectiveKind::kLogUtility);
  const auto improved = local_search_improve(
      *s.scenario, s.extraction.candidates, greedy_log,
      ObjectiveKind::kLogUtility);
  EXPECT_GE(improved.result.approx_utility,
            greedy_log.approx_utility - 1e-12);
}

}  // namespace
}  // namespace hipo::opt
