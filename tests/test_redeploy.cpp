#include "src/ext/redeploy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace hipo::ext {
namespace {

using model::Placement;
using model::Strategy;

Strategy strat(double x, double y, double phi, std::size_t type) {
  return Strategy{{x, y}, phi, type};
}

/// Brute force over per-type permutations: min total and min max costs.
void brute_force(const Placement& from, const Placement& to,
                 std::size_t num_types, const SwitchCostModel& model,
                 double& best_total, double& best_minimax,
                 double& best_total_at_minimax) {
  best_total = 1e30;
  best_minimax = 1e30;
  best_total_at_minimax = 1e30;
  // Group per type.
  std::vector<std::vector<std::size_t>> f(num_types), t(num_types);
  for (std::size_t i = 0; i < from.size(); ++i) f[from[i].type].push_back(i);
  for (std::size_t i = 0; i < to.size(); ++i) t[to[i].type].push_back(i);

  // Enumerate the cross product of per-type permutations recursively.
  std::vector<std::vector<std::size_t>> perms(num_types);
  std::function<void(std::size_t, double, double)> go =
      [&](std::size_t q, double total, double worst) {
        if (q == num_types) {
          best_total = std::min(best_total, total);
          if (worst < best_minimax - 1e-12) {
            best_minimax = worst;
            best_total_at_minimax = total;
          } else if (std::abs(worst - best_minimax) <= 1e-12) {
            best_total_at_minimax = std::min(best_total_at_minimax, total);
          }
          return;
        }
        std::vector<std::size_t> perm(t[q].size());
        std::iota(perm.begin(), perm.end(), std::size_t{0});
        do {
          double tot = total, wst = worst;
          for (std::size_t i = 0; i < f[q].size(); ++i) {
            const double c = model.cost(from[f[q][i]], to[t[q][perm[i]]]);
            tot += c;
            wst = std::max(wst, c);
          }
          go(q + 1, tot, wst);
        } while (std::next_permutation(perm.begin(), perm.end()));
      };
  go(0, 0.0, 0.0);
}

TEST(SwitchCost, CombinesMoveAndRotate) {
  SwitchCostModel m;
  m.w_move = 2.0;
  m.w_rotate = 1.0;
  const auto a = strat(0, 0, 0.0, 0);
  const auto b = strat(3, 4, geom::kPi / 2.0, 0);
  EXPECT_NEAR(m.cost(a, b), 2.0 * 5.0 + geom::kPi / 2.0, 1e-12);
}

TEST(SwitchCost, RotationUsesShortestArc) {
  SwitchCostModel m;
  m.w_move = 0.0;
  m.w_rotate = 1.0;
  const auto a = strat(0, 0, 0.1, 0);
  const auto b = strat(0, 0, geom::kTwoPi - 0.1, 0);
  EXPECT_NEAR(m.cost(a, b), 0.2, 1e-12);
}

TEST(RedeployMinTotal, MismatchedCountsThrow) {
  const Placement from{strat(0, 0, 0, 0)};
  const Placement to{strat(1, 1, 0, 0), strat(2, 2, 0, 0)};
  EXPECT_THROW(redeploy_min_total(from, to, 1), hipo::ConfigError);
}

TEST(RedeployMinTotal, TypesNeverMixed) {
  const Placement from{strat(0, 0, 0, 0), strat(10, 10, 0, 1)};
  // The type-1 target is NEXT to the type-0 source; must still pair by type.
  const Placement to{strat(10, 10, 0, 0), strat(0, 0, 0, 1)};
  const auto plan = redeploy_min_total(from, to, 2);
  EXPECT_EQ(plan.to_of[0], 0u);  // type 0 → type 0 slot
  EXPECT_EQ(plan.to_of[1], 1u);
}

TEST(RedeployMinTotal, PicksCheaperAssignment) {
  const Placement from{strat(0, 0, 0, 0), strat(10, 0, 0, 0)};
  const Placement to{strat(1, 0, 0, 0), strat(11, 0, 0, 0)};
  const auto plan = redeploy_min_total(from, to, 1);
  EXPECT_NEAR(plan.total_cost, 2.0, 1e-9);  // 1 + 1, not 11 + 9
  EXPECT_EQ(plan.to_of[0], 0u);
  EXPECT_EQ(plan.to_of[1], 1u);
}

TEST(RedeployMinMax, TradesTotalForMax) {
  // Cost matrix: [[0, 5], [5, √90]]. Identity matching: total √90,
  // max √90 ≈ 9.49 — the min-total choice. Swap: total 10, max 5 — the
  // min-max choice.
  const Placement from{strat(0, 0, 0, 0), strat(3, 4, 0, 0)};
  const Placement to{strat(0, 0, 0, 0), strat(0, -5, 0, 0)};
  SwitchCostModel m;
  m.w_rotate = 0.0;
  const double rt90 = std::sqrt(90.0);
  const auto total_plan = redeploy_min_total(from, to, 1, m);
  const auto minimax_plan = redeploy_min_max(from, to, 1, m);
  EXPECT_NEAR(total_plan.total_cost, rt90, 1e-9);
  EXPECT_NEAR(total_plan.max_cost, rt90, 1e-9);
  EXPECT_NEAR(minimax_plan.max_cost, 5.0, 1e-9);
  EXPECT_NEAR(minimax_plan.total_cost, 10.0, 1e-9);
}

TEST(RedeployEmpty, NoChargers) {
  const auto plan = redeploy_min_max({}, {}, 2);
  EXPECT_EQ(plan.total_cost, 0.0);
  EXPECT_EQ(plan.max_cost, 0.0);
}

TEST(RedeployEmpty, MinTotalNoChargers) {
  // Regression guard for the weights.size()-1 underflow family: both
  // objectives must take the empty early-out, not index an empty list.
  const auto plan = redeploy_min_total({}, {}, 3);
  EXPECT_TRUE(plan.to_of.empty());
  EXPECT_EQ(plan.total_cost, 0.0);
}

TEST(RedeployDegenerate, IdenticalPlacementsCostNothing) {
  // from == to with duplicate positions: every weight is 0 and the minimax
  // binary search runs over the single deduplicated weight.
  const Placement p = {strat(3, 3, 0.5, 0), strat(3, 3, 0.5, 0),
                       strat(7, 1, 2.0, 1)};
  for (const auto& plan : {redeploy_min_total(p, p, 2),
                           redeploy_min_max(p, p, 2)}) {
    EXPECT_NEAR(plan.total_cost, 0.0, 1e-12);
    EXPECT_NEAR(plan.max_cost, 0.0, 1e-12);
  }
}

TEST(RedeployBestEffort, EqualCountsMatchMinTotal) {
  hipo::Rng rng(77);
  Placement from, to;
  for (std::size_t q = 0; q < 2; ++q) {
    for (int i = 0; i < 3; ++i) {
      from.push_back(strat(rng.uniform(0, 20), rng.uniform(0, 20),
                           rng.angle(), q));
      to.push_back(strat(rng.uniform(0, 20), rng.uniform(0, 20),
                         rng.angle(), q));
    }
  }
  const SwitchCostModel m;
  const auto exact = redeploy_min_total(from, to, 2, m);
  const auto lenient = redeploy_best_effort(from, to, 2, m);
  EXPECT_NEAR(lenient.total_cost, exact.total_cost, 1e-9);
  EXPECT_EQ(lenient.to_of, exact.to_of);
  EXPECT_EQ(lenient.transferred, from.size());
  EXPECT_EQ(lenient.recalled, 0u);
  EXPECT_EQ(lenient.deployed, 0u);
}

TEST(RedeployBestEffort, SurplusFromRecallsTheFarCharger) {
  // Two old chargers, one new slot: the nearer one transfers, the other is
  // recalled (to_of = kUnassigned).
  const Placement from = {strat(0, 0, 0, 0), strat(10, 0, 0, 0)};
  const Placement to = {strat(9, 0, 0, 0)};
  const auto plan = redeploy_best_effort(from, to, 1);
  EXPECT_EQ(plan.to_of[0], kUnassigned);
  EXPECT_EQ(plan.to_of[1], 0u);
  EXPECT_EQ(plan.from_of[0], 1u);
  EXPECT_EQ(plan.transferred, 1u);
  EXPECT_EQ(plan.recalled, 1u);
  EXPECT_EQ(plan.deployed, 0u);
  EXPECT_NEAR(plan.total_cost, 1.0, 1e-12);
}

TEST(RedeployBestEffort, SurplusToDeploysFresh) {
  const Placement from = {strat(0, 0, 0, 0)};
  const Placement to = {strat(20, 0, 0, 0), strat(1, 0, 0, 0)};
  const auto plan = redeploy_best_effort(from, to, 1);
  EXPECT_EQ(plan.to_of[0], 1u);
  EXPECT_EQ(plan.from_of[0], kUnassigned);
  EXPECT_EQ(plan.from_of[1], 0u);
  EXPECT_EQ(plan.transferred, 1u);
  EXPECT_EQ(plan.recalled, 0u);
  EXPECT_EQ(plan.deployed, 1u);
  EXPECT_NEAR(plan.max_cost, 1.0, 1e-12);
}

TEST(RedeployBestEffort, TypesNeverMixAndEmptySidesWork) {
  // Type 0 only on the from side, type 1 only on the to side: nothing can
  // transfer across types.
  const Placement from = {strat(0, 0, 0, 0), strat(1, 1, 0, 0)};
  const Placement to = {strat(0, 0, 0, 1)};
  const auto plan = redeploy_best_effort(from, to, 2);
  EXPECT_EQ(plan.transferred, 0u);
  EXPECT_EQ(plan.recalled, 2u);
  EXPECT_EQ(plan.deployed, 1u);
  EXPECT_EQ(plan.to_of[0], kUnassigned);
  EXPECT_EQ(plan.to_of[1], kUnassigned);
  EXPECT_EQ(plan.from_of[0], kUnassigned);
  EXPECT_DOUBLE_EQ(plan.total_cost, 0.0);

  const auto empty = redeploy_best_effort({}, {}, 2);
  EXPECT_EQ(empty.transferred, 0u);
  EXPECT_TRUE(empty.to_of.empty());
}

// Property: both objectives match brute force on random instances with
// heterogeneous types.
class RedeployOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(RedeployOracleTest, MatchesBruteForce) {
  hipo::Rng rng(static_cast<std::uint64_t>(GetParam()) * 149 + 3);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t num_types = 1 + rng.below(2);
    Placement from, to;
    for (std::size_t q = 0; q < num_types; ++q) {
      const int n = 1 + static_cast<int>(rng.below(4));
      for (int i = 0; i < n; ++i) {
        from.push_back(strat(rng.uniform(0, 20), rng.uniform(0, 20),
                             rng.angle(), q));
        to.push_back(strat(rng.uniform(0, 20), rng.uniform(0, 20),
                           rng.angle(), q));
      }
    }
    const SwitchCostModel m;
    double bf_total, bf_minimax, bf_total_at_minimax;
    brute_force(from, to, num_types, m, bf_total, bf_minimax,
                bf_total_at_minimax);

    const auto total_plan = redeploy_min_total(from, to, num_types, m);
    EXPECT_NEAR(total_plan.total_cost, bf_total, 1e-9);

    const auto minimax_plan = redeploy_min_max(from, to, num_types, m);
    EXPECT_NEAR(minimax_plan.max_cost, bf_minimax, 1e-9);
    EXPECT_NEAR(minimax_plan.total_cost, bf_total_at_minimax, 1e-9);

    // Sanity: every assignment pairs matching types.
    for (std::size_t i = 0; i < from.size(); ++i) {
      EXPECT_EQ(from[i].type, to[total_plan.to_of[i]].type);
      EXPECT_EQ(from[i].type, to[minimax_plan.to_of[i]].type);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, RedeployOracleTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace hipo::ext
