// Integration tests: the full HIPO pipeline against baselines and physics
// sanity checks.
#include "src/core/solver.hpp"

#include <gtest/gtest.h>

#include "src/baselines/baselines.hpp"
#include "src/model/scenario_gen.hpp"
#include "src/util/rng.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::core {
namespace {

TEST(Solver, ProducesValidPlacement) {
  const auto s = test::small_paper_scenario(31, 2, 1);
  const auto result = solve(s);
  s.validate_placement(result.placement);
  EXPECT_LE(result.placement.size(), s.num_chargers());
  EXPECT_GE(result.utility, 0.0);
  EXPECT_LE(result.utility, 1.0);
}

TEST(Solver, ApproxUnderestimatesExact) {
  // Lemma 4.2/4.3: P̃ <= P, so the approximated objective of the chosen
  // placement never exceeds the exact one.
  const auto s = test::small_paper_scenario(32, 2, 1);
  const auto result = solve(s);
  EXPECT_LE(result.approx_utility, result.utility + 1e-9);
  EXPECT_GE(result.utility,
            result.approx_utility / (1.0 + s.eps1()) - 1e-9);
}

TEST(Solver, DeterministicAcrossRuns) {
  const auto s = test::small_paper_scenario(33, 2, 1);
  const auto r1 = solve(s);
  const auto r2 = solve(s);
  ASSERT_EQ(r1.placement.size(), r2.placement.size());
  for (std::size_t i = 0; i < r1.placement.size(); ++i) {
    EXPECT_EQ(r1.placement[i].pos, r2.placement[i].pos);
    EXPECT_EQ(r1.placement[i].orientation, r2.placement[i].orientation);
  }
  EXPECT_DOUBLE_EQ(r1.utility, r2.utility);
}

TEST(Solver, ThreadPoolSameAnswer) {
  const auto s = test::small_paper_scenario(34, 2, 1);
  const auto seq = solve(s);
  parallel::ThreadPool pool(3);
  SolveOptions opts;
  opts.pool = &pool;
  const auto par = solve(s, opts);
  EXPECT_DOUBLE_EQ(seq.utility, par.utility);
}

TEST(Solver, BeatsAllBaselinesOnAverage) {
  // The paper's headline claim (≥33% over the best baseline on average
  // across sweeps). On individual small instances we require HIPO to be at
  // least as good as every baseline's average, and strictly better than
  // the weak ones.
  double hipo_sum = 0.0;
  std::vector<double> base_sum(8, 0.0);
  const int reps = 5;
  const auto algorithms = baselines::comparison_algorithms();
  for (int rep = 0; rep < reps; ++rep) {
    const auto s = test::small_paper_scenario(100 + rep, 2, 2);
    hipo_sum += solve(s).utility;
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      Rng rng(rep * 17 + 3);
      base_sum[a] += s.placement_utility(algorithms[a].run(s, rng));
    }
  }
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    EXPECT_GE(hipo_sum, base_sum[a] - 1e-9)
        << "HIPO lost to " << algorithms[a].name;
  }
  // Strictly better than the random baselines by a wide margin.
  EXPECT_GT(hipo_sum, 1.3 * base_sum[7]);  // RPAR
}

TEST(Solver, GlobalGreedyModeWorks) {
  const auto s = test::small_paper_scenario(35, 2, 1);
  SolveOptions opts;
  opts.greedy = opt::GreedyMode::kLazyGlobal;
  const auto result = solve(s, opts);
  s.validate_placement(result.placement);
  EXPECT_GT(result.utility, 0.0);
}

TEST(Solver, FullyShieldedDeviceGetsZero) {
  // A device enclosed by a square ring of obstacles cannot be charged.
  auto cfg = test::simple_config();
  cfg.devices = {test::device_at(10, 10), test::device_at(3, 3)};
  // Four walls boxing in device 0 (the walls leave no line of sight wider
  // than the charger's minimum distance).
  cfg.obstacles = {
      geom::make_rect({8.5, 8.5}, {11.5, 9.5}),
      geom::make_rect({8.5, 10.5}, {11.5, 11.5}),
      geom::make_rect({8.5, 9.4}, {9.5, 10.6}),
      geom::make_rect({10.5, 9.4}, {11.5, 10.6}),
  };
  const model::Scenario s(std::move(cfg));
  const auto result = solve(s);
  const auto per_dev = s.per_device_utility(result.placement);
  EXPECT_DOUBLE_EQ(per_dev[0], 0.0);
  EXPECT_GT(per_dev[1], 0.0);
}

TEST(Solver, FieldScenarioEndToEnd) {
  const auto s = model::make_field_scenario();
  const auto result = solve(s);
  s.validate_placement(result.placement);
  EXPECT_GT(result.utility, 0.2);  // chargers reach most sensors
}

TEST(Solver, MoreChargersNeverHurt) {
  model::GenOptions base_opt;
  base_opt.device_multiplier = 2;
  base_opt.charger_multiplier = 1;
  Rng rng_a(55);
  const auto small = model::make_paper_scenario(base_opt, rng_a);

  model::GenOptions big_opt = base_opt;
  big_opt.charger_multiplier = 3;
  Rng rng_b(55);
  const auto large = model::make_paper_scenario(big_opt, rng_b);

  // Same device topology (same seed, same sampling sequence).
  ASSERT_EQ(small.num_devices(), large.num_devices());
  EXPECT_GE(solve(large).utility, solve(small).utility - 1e-9);
}

}  // namespace
}  // namespace hipo::core
