// serve::scenario_hash — the cache key of the solver service. Two contracts:
// canonicalization (the hash is over the parsed model, so file ordering and
// number spelling cannot split the cache) and sensitivity (every semantic
// Scenario field moves the hash; the only excluded knob is
// accelerate_obstacles, which never changes results).
#include "src/serve/hash.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>

#include "src/geometry/polygon.hpp"
#include "src/model/io.hpp"
#include "src/model/scenario.hpp"
#include "tests/test_helpers.hpp"

namespace hipo {
namespace {

model::Scenario parse(const std::string& text) {
  std::istringstream is(text);
  return model::read_scenario(is);
}

model::Scenario::Config base_config() {
  auto cfg = test::simple_config();
  cfg.devices = {test::device_at(10, 10), test::device_at(12, 10, 0.5, 0)};
  cfg.obstacles = {geom::make_rect({4.0, 4.0}, {5.0, 5.0})};
  return cfg;
}

std::uint64_t hash_of(model::Scenario::Config cfg) {
  return serve::scenario_hash(model::Scenario(std::move(cfg)));
}

TEST(ScenarioHash, LineOrderAndWhitespaceDoNotMatter) {
  // The same scenario three ways: canonical writer order; sections
  // interleaved with comments, extra blanks, and tabs; numbers spelled with
  // trailing zeros / exponents. All parse to the same model.
  const std::string canonical =
      "hipo-scenario v1\n"
      "region 0 0 20 20\n"
      "eps1 0.3\n"
      "charger_type 1.5 1 5 2\n"
      "device_type 6.2 \n"
      "pair 0 0 100 40\n"
      "obstacle 4 4 4 5 4 5 5 4 5\n"
      "device 10 10 0 0 0.05 1\n";
  const std::string shuffled =
      "hipo-scenario v1\n"
      "# devices first, config later\n"
      "\n"
      "device 10 10 0 0 0.05 1\n"
      "obstacle 4 4 4 5 4 5 5 4 5\n"
      "pair 0 0 100 40\n"
      "\teps1 0.3\n"
      "charger_type 1.5 1 5 2\n"
      "device_type 6.2\n"
      "region 0 0 20 20\n";
  const std::string respelled =
      "hipo-scenario v1\n"
      "region 0.0 0e0 2e1 20.000\n"
      "eps1 3e-1\n"
      "charger_type 1.50 1.0 5.00 2\n"
      "device_type 6.20\n"
      "pair 0 0 1e2 40.0\n"
      "obstacle 4 4.0 4.0 5.0 4.0 5.0 5.0 4.0 5.0\n"
      "device 10.0 10.0 0.0 0 5e-2\n";

  const std::uint64_t reference = serve::scenario_hash(parse(canonical));
  EXPECT_EQ(serve::scenario_hash(parse(shuffled)), reference);
  EXPECT_EQ(serve::scenario_hash(parse(respelled)), reference);
}

TEST(ScenarioHash, WriteReadRoundTripPreservesTheHash) {
  const model::Scenario scenario(base_config());
  std::ostringstream os;
  model::write_scenario(os, scenario);
  EXPECT_EQ(serve::scenario_hash(parse(os.str())),
            serve::scenario_hash(scenario));
}

TEST(ScenarioHash, KeyIsStableLowercaseHex) {
  const model::Scenario scenario(base_config());
  const std::string key = serve::scenario_key(scenario);
  ASSERT_EQ(key.size(), 16u);
  for (const char c : key) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << key;
  }
  EXPECT_EQ(key, serve::scenario_key(model::Scenario(base_config())));
  EXPECT_EQ(key, serve::hash_to_key(serve::scenario_hash(scenario)));
}

// Every semantic field must move the hash: a collision between two configs
// that solve differently would serve one of them the other's placement.
TEST(ScenarioHash, EverySemanticFieldChangesTheHash) {
  const std::uint64_t reference = hash_of(base_config());
  const auto differs = [&](const char* label,
                           void (*mutate)(model::Scenario::Config&)) {
    auto cfg = base_config();
    mutate(cfg);
    EXPECT_NE(hash_of(std::move(cfg)), reference) << label;
  };

  differs("region.lo.x", [](auto& c) { c.region.lo.x = -1.0; });
  differs("region.lo.y", [](auto& c) { c.region.lo.y = -1.0; });
  differs("region.hi.x", [](auto& c) { c.region.hi.x = 21.0; });
  differs("region.hi.y", [](auto& c) { c.region.hi.y = 21.0; });
  differs("eps1", [](auto& c) { c.eps1 = 0.25; });
  differs("charger angle", [](auto& c) { c.charger_types[0].angle = 1.0; });
  differs("charger d_min", [](auto& c) { c.charger_types[0].d_min = 0.5; });
  differs("charger d_max", [](auto& c) { c.charger_types[0].d_max = 6.0; });
  differs("charger count", [](auto& c) { c.charger_counts[0] = 3; });
  differs("device type angle",
          [](auto& c) { c.device_types[0].angle = 3.0; });
  differs("pair a", [](auto& c) { c.pair_params[0].a = 99.0; });
  differs("pair b", [](auto& c) { c.pair_params[0].b = 41.0; });
  differs("device x", [](auto& c) { c.devices[0].pos.x = 10.5; });
  differs("device y", [](auto& c) { c.devices[0].pos.y = 10.5; });
  differs("device orientation",
          [](auto& c) { c.devices[0].orientation = 1.0; });
  differs("device p_th", [](auto& c) { c.devices[0].p_th = 0.06; });
  differs("device weight", [](auto& c) { c.devices[0].weight = 2.0; });
  differs("device added",
          [](auto& c) { c.devices.push_back(test::device_at(6, 6)); });
  differs("device removed", [](auto& c) { c.devices.pop_back(); });
  differs("obstacle vertex moved", [](auto& c) {
    c.obstacles[0] = geom::make_rect({4.0, 4.0}, {5.0, 5.5});
  });
  differs("obstacle added", [](auto& c) {
    c.obstacles.push_back(geom::make_rect({15.0, 15.0}, {16.0, 16.0}));
  });
  differs("obstacle removed", [](auto& c) { c.obstacles.clear(); });
  differs("new charger type", [](auto& c) {
    c.charger_types.push_back({1.0, 0.5, 3.0});
    c.charger_counts.push_back(1);
    c.pair_params.push_back({50.0, 20.0});
  });
  differs("new device type", [](auto& c) {
    c.device_types.push_back({3.0});
    c.pair_params.push_back({60.0, 30.0});
  });
}

TEST(ScenarioHash, AccelerateObstaclesIsExcluded) {
  // The obstacle-index acceleration knob never changes results, so it must
  // not split the cache.
  auto slow = base_config();
  slow.accelerate_obstacles = false;
  EXPECT_EQ(hash_of(std::move(slow)), hash_of(base_config()));
}

TEST(ScenarioHash, TaggedStreamSeparatesStructuralTwins) {
  // Swapping a device's x and y keeps the same doubles in the stream but
  // under different fields; the per-field tags must break the symmetry.
  auto swapped = base_config();
  std::swap(swapped.devices[1].pos.x, swapped.devices[1].pos.y);
  EXPECT_NE(hash_of(std::move(swapped)), hash_of(base_config()));
}

}  // namespace
}  // namespace hipo
