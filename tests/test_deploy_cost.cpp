#include "src/ext/deploy_cost.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/opt/greedy.hpp"
#include "src/pdcs/extract.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::ext {
namespace {

DeploymentCostModel unit_model(std::size_t num_types) {
  DeploymentCostModel m;
  m.depot = {0.0, 0.0};
  m.c_dist = 1.0;
  m.c_rot = 0.1;
  m.c_power = 0.5;
  m.type_power.assign(num_types, 2.0);
  return m;
}

TEST(DeploymentCostModel, SingleStrategyCost) {
  auto m = unit_model(1);
  const model::Strategy s{{3.0, 4.0}, geom::kPi / 2.0, 0};
  EXPECT_NEAR(m.cost(s), 5.0 + 0.1 * geom::kPi / 2.0 + 0.5 * 2.0, 1e-12);
}

TEST(DeploymentCostModel, MissingTypePowerThrows) {
  DeploymentCostModel m;
  m.type_power = {};
  const model::Strategy s{{1.0, 1.0}, 0.0, 0};
  EXPECT_THROW(m.cost(s), hipo::ConfigError);
}

TEST(DeploymentCostModel, PlacementCostAdds) {
  auto m = unit_model(1);
  const model::Placement p{{{3.0, 4.0}, 0.0, 0}, {{6.0, 8.0}, 0.0, 0}};
  EXPECT_NEAR(m.cost(p), m.cost(p[0]) + m.cost(p[1]), 1e-12);
}

class BudgetedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = std::make_unique<model::Scenario>(test::simple_scenario());
    extraction_ = pdcs::extract_all(*scenario_);
    ASSERT_FALSE(extraction_.candidates.empty());
    model_ = unit_model(scenario_->num_charger_types());
  }

  std::unique_ptr<model::Scenario> scenario_;
  pdcs::ExtractionResult extraction_;
  DeploymentCostModel model_;
};

TEST_F(BudgetedTest, NegativeBudgetThrows) {
  EXPECT_THROW(
      select_budgeted(*scenario_, extraction_.candidates, model_, -1.0),
      hipo::ConfigError);
}

TEST_F(BudgetedTest, ZeroBudgetSelectsNothing) {
  const auto r =
      select_budgeted(*scenario_, extraction_.candidates, model_, 0.0);
  EXPECT_TRUE(r.selected.empty());
  EXPECT_DOUBLE_EQ(r.spent, 0.0);
}

TEST_F(BudgetedTest, SpendNeverExceedsBudget) {
  for (double budget : {5.0, 12.0, 30.0, 100.0}) {
    const auto r =
        select_budgeted(*scenario_, extraction_.candidates, model_, budget);
    EXPECT_LE(r.spent, budget + 1e-9);
    double check = 0.0;
    for (const auto& s : r.placement) check += model_.cost(s);
    EXPECT_NEAR(check, r.spent, 1e-9);
  }
}

TEST_F(BudgetedTest, RespectsChargerBudgetToo) {
  const auto r =
      select_budgeted(*scenario_, extraction_.candidates, model_, 1e9);
  scenario_->validate_placement(r.placement);
}

TEST_F(BudgetedTest, UtilityMonotoneInBudget) {
  double prev = -1.0;
  for (double budget : {0.0, 10.0, 20.0, 40.0, 80.0, 1e9}) {
    const auto r =
        select_budgeted(*scenario_, extraction_.candidates, model_, budget);
    EXPECT_GE(r.approx_utility, prev - 1e-9);
    prev = r.approx_utility;
  }
}

TEST_F(BudgetedTest, UnlimitedBudgetComparableToPlainGreedy) {
  const auto budgeted =
      select_budgeted(*scenario_, extraction_.candidates, model_, 1e9);
  const auto plain = opt::select_strategies(*scenario_,
                                            extraction_.candidates);
  // Ratio greedy may differ from gain greedy, but with unlimited budget it
  // should reach a placement of comparable quality (within 50%).
  EXPECT_GE(budgeted.approx_utility, 0.5 * plain.approx_utility - 1e-9);
}

TEST_F(BudgetedTest, SingletonGuard) {
  // Budget that affords exactly one (cheap) candidate: the result must be a
  // single candidate with the best achievable value among affordable ones.
  double cheapest = 1e30;
  for (const auto& c : extraction_.candidates) {
    cheapest = std::min(cheapest, model_.cost(c.strategy));
  }
  const auto r = select_budgeted(*scenario_, extraction_.candidates, model_,
                                 cheapest + 1e-6);
  EXPECT_LE(r.selected.size(), 1u);
}

}  // namespace
}  // namespace hipo::ext
