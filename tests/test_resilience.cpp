#include "src/ext/resilience.hpp"

#include <gtest/gtest.h>

#include "src/core/solver.hpp"
#include "src/util/error.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::ext {
namespace {

model::Placement two_charger_placement() {
  // Chargers east and north of the single device in simple_scenario-like
  // geometry.
  return {{{13.0, 10.0}, geom::kPi, 0}, {{10.0, 13.0}, -geom::kPi / 2.0, 0}};
}

TEST(WorstCase, ZeroFailuresIsIntact) {
  const auto s = test::simple_scenario();
  const auto placement = two_charger_placement();
  const auto impact = worst_case_failure(s, placement, 0);
  EXPECT_TRUE(impact.failed.empty());
  EXPECT_DOUBLE_EQ(impact.drop, 0.0);
  EXPECT_DOUBLE_EQ(impact.utility, s.placement_utility(placement));
}

TEST(WorstCase, AllFailuresIsZeroUtility) {
  const auto s = test::simple_scenario();
  const auto placement = two_charger_placement();
  const auto impact = worst_case_failure(s, placement, placement.size());
  EXPECT_DOUBLE_EQ(impact.utility, 0.0);
}

TEST(WorstCase, TooManyFailuresThrows) {
  const auto s = test::simple_scenario();
  EXPECT_THROW(worst_case_failure(s, two_charger_placement(), 3),
               hipo::ConfigError);
}

TEST(WorstCase, PicksTheMostDamagingCharger) {
  // One charger saturates two devices, the other only one: the adversary
  // must kill the former.
  auto cfg = test::simple_config();
  cfg.devices = {test::device_at(10, 10), test::device_at(12, 10),
                 test::device_at(10, 16)};
  const model::Scenario s(std::move(cfg));
  const model::Placement placement{
      {{14.5, 10.0}, geom::kPi, 0},          // covers devices 0 and 1
      {{10.0, 13.0}, geom::kPi / 2.0, 0},    // covers device 2
  };
  const auto impact = worst_case_failure(s, placement, 1);
  ASSERT_EQ(impact.failed.size(), 1u);
  EXPECT_EQ(impact.failed[0], 0u);
  EXPECT_GT(impact.drop, 0.0);
}

TEST(WorstCase, MonotoneInK) {
  const auto s = test::small_paper_scenario(401, 1, 1);
  const auto placement = core::solve(s).placement;
  double prev = s.placement_utility(placement) + 1e-12;
  for (std::size_t k = 0; k <= std::min<std::size_t>(3, placement.size());
       ++k) {
    const auto impact = worst_case_failure(s, placement, k);
    EXPECT_LE(impact.utility, prev + 1e-12);
    prev = impact.utility;
  }
}

TEST(WorstCase, GreedyAdversaryUpperBoundsExact) {
  // With a low enumeration limit the greedy adversary runs; its damage is a
  // lower bound on (i.e. its utility upper-bounds) the exact worst case.
  const auto s = test::small_paper_scenario(402, 1, 1);
  const auto placement = core::solve(s).placement;
  if (placement.size() < 3) GTEST_SKIP();
  const auto exact = worst_case_failure(s, placement, 2);
  const auto greedy = worst_case_failure(s, placement, 2, /*limit=*/1);
  EXPECT_GE(greedy.utility, exact.utility - 1e-9);
}

TEST(ExpectedFailure, ZeroProbabilityIsIntact) {
  const auto s = test::simple_scenario();
  const auto placement = two_charger_placement();
  Rng rng(1);
  EXPECT_DOUBLE_EQ(expected_failure_utility(s, placement, 0.0, rng),
                   s.placement_utility(placement));
}

TEST(ExpectedFailure, CertainFailureIsZero) {
  const auto s = test::simple_scenario();
  Rng rng(2);
  EXPECT_DOUBLE_EQ(
      expected_failure_utility(s, two_charger_placement(), 1.0, rng), 0.0);
}

TEST(ExpectedFailure, MonotoneInProbability) {
  const auto s = test::small_paper_scenario(403, 1, 1);
  const auto placement = core::solve(s).placement;
  double prev = 2.0;
  for (double p : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    Rng rng(7);  // same seed: coupled samples make monotonicity near-exact
    const double u =
        expected_failure_utility(s, placement, p, rng, /*samples=*/400);
    EXPECT_LE(u, prev + 0.05) << "p=" << p;
    prev = u;
  }
}

TEST(ExpectedFailure, ValidatesArguments) {
  const auto s = test::simple_scenario();
  Rng rng(3);
  EXPECT_THROW(
      expected_failure_utility(s, two_charger_placement(), -0.1, rng),
      hipo::ConfigError);
  EXPECT_THROW(
      expected_failure_utility(s, two_charger_placement(), 0.5, rng, 0),
      hipo::ConfigError);
}


TEST(WorstCase, SingleChargerSingleFailure) {
  const auto s = test::simple_scenario();
  const model::Placement placement = {{{13.0, 10.0}, geom::kPi, 0}};
  const auto impact = worst_case_failure(s, placement, 1);
  ASSERT_EQ(impact.failed.size(), 1u);
  EXPECT_EQ(impact.failed[0], 0u);
  EXPECT_DOUBLE_EQ(impact.utility, 0.0);
  EXPECT_DOUBLE_EQ(impact.drop, s.placement_utility(placement));
}

TEST(ExpectedFailure, CertainFailureIsEmptyPlacement) {
  const auto s = test::simple_scenario();
  const auto placement = two_charger_placement();
  hipo::Rng rng(5);
  const double u = expected_failure_utility(s, placement, 1.0, rng, 4);
  EXPECT_DOUBLE_EQ(u, s.placement_utility({}));
}

TEST(WorstCase, EmptyPlacementZeroFailures) {
  const auto s = test::simple_scenario();
  const auto impact = worst_case_failure(s, {}, 0);
  EXPECT_TRUE(impact.failed.empty());
  EXPECT_DOUBLE_EQ(impact.drop, 0.0);
}

}  // namespace
}  // namespace hipo::ext
