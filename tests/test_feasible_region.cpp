#include "src/discretize/feasible_region.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/geometry/angles.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::discretize {
namespace {

using geom::kPi;
using geom::kTwoPi;
using geom::Vec2;

TEST(FeasibleRegion, ValidatesArguments) {
  const auto s = test::simple_scenario();
  const ShadowMap sm(s.device(0).pos, s.obstacles(), 5.0);
  EXPECT_THROW(FeasibleRegion(s, 99, 0, sm), hipo::ConfigError);
  EXPECT_THROW(FeasibleRegion(s, 0, 9, sm), hipo::ConfigError);
  const ShadowMap small(s.device(0).pos, s.obstacles(), 1.0);
  EXPECT_THROW(FeasibleRegion(s, 0, 0, small), hipo::ConfigError);
}

TEST(FeasibleRegion, RingDistancesGateFeasibility) {
  const auto s = test::simple_scenario();  // device 0 at (10,10), d∈[1,5]
  const ShadowMap sm(s.device(0).pos, s.obstacles(), 5.0);
  const FeasibleRegion fr(s, 0, 0, sm);
  EXPECT_FALSE(fr.feasible({10.5, 10.0}));  // d = 0.5 < 1
  EXPECT_TRUE(fr.feasible({13.0, 10.0}));   // d = 3
  EXPECT_FALSE(fr.feasible({16.0, 10.0}));  // d = 6 > 5
}

TEST(FeasibleRegion, ReceivingSectorGates) {
  auto cfg = test::simple_config();
  cfg.device_types = {{kPi / 2.0}};
  cfg.devices = {test::device_at(10, 10, 0.0)};  // faces east
  const model::Scenario s(std::move(cfg));
  const ShadowMap sm(s.device(0).pos, s.obstacles(), 5.0);
  const FeasibleRegion fr(s, 0, 0, sm);
  EXPECT_TRUE(fr.feasible({13.0, 10.0}));   // east: inside sector
  EXPECT_FALSE(fr.feasible({7.0, 10.0}));   // west: outside
  EXPECT_FALSE(fr.feasible({10.0, 13.0}));  // north: outside π/2 sector
}

TEST(FeasibleRegion, ObstacleShadowGates) {
  const auto s = test::blocked_scenario();  // rect (11,9.5)-(12,10.5)
  const ShadowMap sm(s.device(0).pos, s.obstacles(), 5.0);
  const FeasibleRegion fr(s, 0, 0, sm);
  EXPECT_FALSE(fr.feasible({13.0, 10.0}));  // behind the obstacle
  EXPECT_FALSE(fr.feasible({11.5, 10.0}));  // inside the obstacle
  EXPECT_TRUE(fr.feasible({10.0, 13.0}));   // clear direction
}

TEST(FeasibleRegion, RingPowerMatchesLadder) {
  const auto s = test::simple_scenario();
  const ShadowMap sm(s.device(0).pos, s.obstacles(), 5.0);
  const FeasibleRegion fr(s, 0, 0, sm);
  const auto ring = fr.ring_of({13.0, 10.0});
  ASSERT_TRUE(ring.has_value());
  EXPECT_NEAR(fr.ring_power(*ring), s.ladder(0, 0).approx_power(3.0), 1e-12);
}

TEST(FeasibleRegion, CellsHaveFeasibleRepresentatives) {
  const auto s = test::blocked_scenario();
  const ShadowMap sm(s.device(0).pos, s.obstacles(), 5.0);
  const FeasibleRegion fr(s, 0, 0, sm);
  const auto cells = fr.enumerate_cells();
  EXPECT_FALSE(cells.empty());
  for (const auto& cell : cells) {
    EXPECT_TRUE(fr.feasible(cell.representative));
    EXPECT_EQ(fr.ring_of(cell.representative).value(), cell.ring);
    EXPECT_LT(cell.r_in, cell.r_out);
  }
}

TEST(FeasibleRegion, CellCountGrowsWithObstacles) {
  const auto clear = test::simple_scenario();
  const ShadowMap sm_clear(clear.device(0).pos, clear.obstacles(), 5.0);
  const auto cells_clear =
      FeasibleRegion(clear, 0, 0, sm_clear).enumerate_cells();

  const auto blocked = test::blocked_scenario();
  const ShadowMap sm_blocked(blocked.device(0).pos, blocked.obstacles(), 5.0);
  const auto cells_blocked =
      FeasibleRegion(blocked, 0, 0, sm_blocked).enumerate_cells();

  EXPECT_GT(cells_blocked.size(), cells_clear.size());
}

// Property: feasible(p) ⟺ the four Section 4.1.2 conditions hold, probed
// at random points on random paper scenarios.
class FeasibilityOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(FeasibilityOracleTest, MatchesManualConditions) {
  const auto s = test::small_paper_scenario(
      static_cast<std::uint64_t>(GetParam()) + 500, 2, 1);
  hipo::Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 3);
  const std::size_t j = rng.below(s.num_devices());
  const std::size_t q = rng.below(s.num_charger_types());
  const auto& ct = s.charger_type(q);
  const ShadowMap sm(s.device(j).pos, s.obstacles(), ct.d_max);
  const FeasibleRegion fr(s, j, q, sm);
  const auto& dev = s.device(j);
  const double alpha_o = s.device_type(dev.type).angle;

  for (int probe = 0; probe < 500; ++probe) {
    // Sample in the annulus with margin so probes avoid boundaries.
    const double r = rng.uniform(0.0, ct.d_max * 1.3);
    const Vec2 p = dev.pos + geom::unit_vector(rng.angle()) * r;
    if (std::abs(r - ct.d_min) < 1e-3 || std::abs(r - ct.d_max) < 1e-3)
      continue;
    const double bearing = (p - dev.pos).angle();
    const double dev_angle = geom::angle_distance(bearing, dev.orientation);
    if (alpha_o < kTwoPi && std::abs(dev_angle - alpha_o / 2.0) < 1e-3)
      continue;

    const bool in_ring = r >= ct.d_min && r <= ct.d_max && r > 1e-9;
    const bool in_sector = alpha_o >= kTwoPi || dev_angle <= alpha_o / 2.0;
    const bool placeable = s.position_feasible(p);
    const bool los = s.line_of_sight(p, dev.pos);
    EXPECT_EQ(fr.feasible(p), in_ring && in_sector && placeable && los)
        << "device " << j << " type " << q << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, FeasibilityOracleTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace hipo::discretize
