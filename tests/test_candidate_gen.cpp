#include "src/pdcs/candidate_gen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/geometry/angles.hpp"
#include "src/pdcs/extract.hpp"
#include "src/util/rng.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::pdcs {
namespace {

using geom::Vec2;

TEST(RingRadii, StartsAtDminEndsAtDmax) {
  const auto s = test::simple_scenario();
  const auto radii = ring_radii(s, 0, 0);
  ASSERT_GE(radii.size(), 2u);
  EXPECT_DOUBLE_EQ(radii.front(), 1.0);
  EXPECT_DOUBLE_EQ(radii.back(), 5.0);
  EXPECT_TRUE(std::is_sorted(radii.begin(), radii.end()));
}

TEST(PairPositions, AllFeasibleAndInRange) {
  const auto s = test::simple_scenario();
  const ExtractOptions opt;
  const auto positions = pair_candidate_positions(s, 0, 0, 1, opt);
  EXPECT_FALSE(positions.empty());
  const double d_max = s.charger_type(0).d_max;
  for (const Vec2& p : positions) {
    EXPECT_TRUE(s.position_feasible(p));
    const double d0 = geom::distance(p, s.device(0).pos);
    const double d1 = geom::distance(p, s.device(1).pos);
    EXPECT_TRUE(d0 <= d_max + 1e-6 || d1 <= d_max + 1e-6);
  }
}

TEST(PairPositions, Deduplicated) {
  const auto s = test::simple_scenario();
  const ExtractOptions opt;
  const auto positions = pair_candidate_positions(s, 0, 0, 1, opt);
  std::set<std::pair<long long, long long>> seen;
  for (const Vec2& p : positions) {
    const auto key = std::make_pair(llround(p.x * 1e6), llround(p.y * 1e6));
    EXPECT_TRUE(seen.insert(key).second) << "duplicate at " << p;
  }
}

TEST(PairPositions, AblationFlagsReduceCount) {
  const auto s = test::simple_scenario();
  ExtractOptions all;
  ExtractOptions none;
  none.use_pair_line = false;
  none.use_pair_arcs = false;
  none.use_ring_ring = false;
  none.use_obstacle_ring = false;
  const auto with_all = pair_candidate_positions(s, 0, 0, 1, all);
  const auto with_none = pair_candidate_positions(s, 0, 0, 1, none);
  EXPECT_GT(with_all.size(), with_none.size());
  EXPECT_TRUE(with_none.empty());
}

TEST(PairPositions, RingRingPointsLieOnCircles) {
  const auto s = test::simple_scenario();
  ExtractOptions opt;
  opt.use_pair_line = false;
  opt.use_pair_arcs = false;
  opt.use_obstacle_ring = false;
  const auto positions = pair_candidate_positions(s, 0, 0, 1, opt);
  const auto ri = ring_radii(s, 0, 0);
  const auto rj = ring_radii(s, 0, 1);
  for (const Vec2& p : positions) {
    const double d0 = geom::distance(p, s.device(0).pos);
    const double d1 = geom::distance(p, s.device(1).pos);
    const auto on_some = [](double d, const std::vector<double>& radii) {
      for (double r : radii)
        if (std::abs(d - r) < 1e-6) return true;
      return false;
    };
    EXPECT_TRUE(on_some(d0, ri));
    EXPECT_TRUE(on_some(d1, rj));
  }
}

TEST(SingletonPositions, OnOwnRings) {
  const auto s = test::simple_scenario();
  const auto positions = singleton_candidate_positions(s, 0, 0, pdcs::ExtractOptions{});
  EXPECT_FALSE(positions.empty());
  const auto radii = ring_radii(s, 0, 0);
  for (const Vec2& p : positions) {
    EXPECT_TRUE(s.position_feasible(p));
    const double d = geom::distance(p, s.device(0).pos);
    bool on_ring = false;
    for (double r : radii)
      if (std::abs(d - r) < 1e-6) on_ring = true;
    EXPECT_TRUE(on_ring);
  }
}

TEST(ObstacleRingPositions, GeneratedNearObstacle) {
  const auto s = test::blocked_scenario();
  ExtractOptions opt;
  opt.use_pair_line = false;
  opt.use_pair_arcs = false;
  opt.use_ring_ring = false;
  opt.use_singleton = false;
  // Single device scenario: pair generation needs two devices, so probe the
  // singleton path indirectly via obstacle-ring on a two-device variant.
  auto cfg = test::simple_config();
  cfg.devices = {test::device_at(10, 10), test::device_at(14, 10)};
  cfg.obstacles = {geom::make_rect({11.0, 9.5}, {12.0, 10.5})};
  const model::Scenario s2(std::move(cfg));
  const auto positions = pair_candidate_positions(s2, 0, 0, 1, opt);
  EXPECT_FALSE(positions.empty());
}

TEST(ExtractDeviceTask, SoundCandidates) {
  const auto s = test::simple_scenario();
  std::vector<Vec2> pts;
  for (std::size_t j = 0; j < s.num_devices(); ++j)
    pts.push_back(s.device(j).pos);
  const spatial::GridIndex index(s.region(), pts);
  const auto cands = extract_device_task(s, index, 0, ExtractOptions{});
  EXPECT_FALSE(cands.empty());
  for (const auto& c : cands) {
    EXPECT_TRUE(s.position_feasible(c.strategy.pos));
    for (std::size_t k = 0; k < c.covered.size(); ++k) {
      EXPECT_NEAR(c.powers[k], s.approx_power(c.strategy, c.covered[k]),
                  1e-12);
      EXPECT_GT(c.powers[k], 0.0);
    }
    EXPECT_TRUE(std::is_sorted(c.covered.begin(), c.covered.end()));
  }
}

TEST(ExtractDeviceTask, RespectsIndexOrdering) {
  // Task for the highest-index device only pairs with larger indices (none),
  // so it should contain only singleton-derived candidates — still nonempty.
  const auto s = test::simple_scenario();
  std::vector<Vec2> pts;
  for (std::size_t j = 0; j < s.num_devices(); ++j)
    pts.push_back(s.device(j).pos);
  const spatial::GridIndex index(s.region(), pts);
  const auto last = extract_device_task(s, index, s.num_devices() - 1,
                                        ExtractOptions{});
  EXPECT_FALSE(last.empty());
}

TEST(CandidateGen, DminZeroColocatedChargerSemantics) {
  // d_min = 0: the ladder starts at the apex, but a charger *exactly* on
  // the device is defined as not covering it (coincident positions have
  // undefined sector angles — coverage_geometry's d <= kEps guard). A
  // charger a hair away is covered and gets the innermost ring's power.
  auto cfg = test::simple_config();
  cfg.charger_types[0].d_min = 0.0;
  cfg.devices = {test::device_at(10, 10)};
  const model::Scenario s(std::move(cfg));
  const auto radii = ring_radii(s, 0, 0);
  ASSERT_FALSE(radii.empty());
  EXPECT_DOUBLE_EQ(radii.front(), 0.0);
  const model::Strategy colocated{{10.0, 10.0}, 0.0, 0};
  EXPECT_FALSE(s.covers(colocated, 0));
  EXPECT_EQ(s.approx_power(colocated, 0), 0.0);
  EXPECT_EQ(s.exact_power(colocated, 0), 0.0);
  const model::Strategy nearby{{10.0 - 1e-3, 10.0}, 0.0, 0};
  EXPECT_TRUE(s.covers(nearby, 0));
  EXPECT_GT(s.approx_power(nearby, 0), 0.0);
  EXPECT_GE(s.exact_power(nearby, 0), s.approx_power(nearby, 0));
}

TEST(CandidateGen, FullAngleChargerExtraction) {
  // α_q = 2π (omnidirectional charger): the rotational sweep degenerates —
  // every orientation covers the same set — and extraction must still
  // produce candidates that cover the devices.
  auto cfg = test::simple_config();
  cfg.charger_types[0].angle = geom::kTwoPi;
  cfg.devices = {test::device_at(10, 10), test::device_at(12, 10)};
  const model::Scenario s(std::move(cfg));
  const auto extraction = extract_all(s);
  ASSERT_FALSE(extraction.candidates.empty());
  bool covers_any = false;
  for (const auto& c : extraction.candidates) {
    EXPECT_TRUE(s.position_feasible(c.strategy.pos));
    covers_any = covers_any || !c.covered.empty();
  }
  EXPECT_TRUE(covers_any);
}

TEST(CandidateGen, ChargerOnObstacleVertexInfeasiblePositionsFiltered) {
  // Obstacle with a vertex between the devices: generated positions must
  // all be feasible (outside obstacle interiors) even though several
  // construction families intersect the obstacle boundary itself.
  auto cfg = test::simple_config();
  cfg.devices = {test::device_at(8, 10), test::device_at(14, 10)};
  cfg.obstacles = {geom::make_rect({10.5, 9.0}, {11.5, 11.0})};
  const model::Scenario s(std::move(cfg));
  const ExtractOptions opt;
  const auto positions = pair_candidate_positions(s, 0, 0, 1, opt);
  for (const geom::Vec2& p : positions) {
    EXPECT_TRUE(s.position_feasible(p)) << p;
  }
}

}  // namespace
}  // namespace hipo::pdcs
