#include "src/geometry/circle.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/geometry/angles.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace hipo::geom {
namespace {

TEST(CircleCircle, TwoPoints) {
  const auto pts = circle_circle_intersections({{0, 0}, 1.0}, {{1, 0}, 1.0});
  ASSERT_EQ(pts.size(), 2u);
  for (const Vec2& p : pts) {
    EXPECT_NEAR(p.norm(), 1.0, 1e-12);
    EXPECT_NEAR(distance(p, {1, 0}), 1.0, 1e-12);
  }
}

TEST(CircleCircle, ExternallyTangent) {
  const auto pts = circle_circle_intersections({{0, 0}, 1.0}, {{2, 0}, 1.0});
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_NEAR(pts[0].x, 1.0, 1e-9);
  EXPECT_NEAR(pts[0].y, 0.0, 1e-9);
}

TEST(CircleCircle, Separate) {
  EXPECT_TRUE(
      circle_circle_intersections({{0, 0}, 1.0}, {{5, 0}, 1.0}).empty());
}

TEST(CircleCircle, Contained) {
  EXPECT_TRUE(
      circle_circle_intersections({{0, 0}, 3.0}, {{0.5, 0}, 1.0}).empty());
}

TEST(CircleCircle, Concentric) {
  EXPECT_TRUE(
      circle_circle_intersections({{0, 0}, 1.0}, {{0, 0}, 2.0}).empty());
  EXPECT_TRUE(
      circle_circle_intersections({{0, 0}, 1.0}, {{0, 0}, 1.0}).empty());
}

TEST(CircleLine, SecantThroughCenter) {
  const auto pts = circle_line_intersections({{0, 0}, 2.0}, {-5, 0}, {1, 0});
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_NEAR(std::abs(pts[0].x), 2.0, 1e-12);
  EXPECT_NEAR(std::abs(pts[1].x), 2.0, 1e-12);
}

TEST(CircleLine, Tangent) {
  const auto pts = circle_line_intersections({{0, 0}, 1.0}, {-5, 1}, {1, 0});
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_NEAR(pts[0].x, 0.0, 1e-9);
  EXPECT_NEAR(pts[0].y, 1.0, 1e-9);
}

TEST(CircleLine, Miss) {
  EXPECT_TRUE(
      circle_line_intersections({{0, 0}, 1.0}, {-5, 2}, {1, 0}).empty());
}

TEST(CircleSegment, ClippedToSegment) {
  // Line would hit twice; segment covers only one crossing.
  const auto pts =
      circle_segment_intersections({{0, 0}, 1.0}, {{0, 0}, {5, 0}});
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_NEAR(pts[0].x, 1.0, 1e-12);
}

TEST(CircleSegment, BothCrossings) {
  const auto pts =
      circle_segment_intersections({{0, 0}, 1.0}, {{-5, 0}, {5, 0}});
  EXPECT_EQ(pts.size(), 2u);
}

TEST(CircleSegment, SegmentInsideMisses) {
  EXPECT_TRUE(
      circle_segment_intersections({{0, 0}, 2.0}, {{-1, 0}, {1, 0}}).empty());
}

TEST(InscribedAngle, RightAngleCirclesHaveChordAsDiameter) {
  // α = π/2: the inscribed-angle circles have the chord as diameter, so
  // both supporting circles coincide with center at the midpoint.
  const auto circles = inscribed_angle_circles({0, 0}, {2, 0}, kPi / 2.0);
  ASSERT_EQ(circles.size(), 2u);
  for (const auto& c : circles) {
    EXPECT_NEAR(c.radius, 1.0, 1e-12);
    EXPECT_NEAR(distance(c.center, {1, 0}), 0.0, 1e-9);
  }
}

TEST(InscribedAngle, CirclesPassThroughBothPoints) {
  hipo::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Vec2 a{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Vec2 b{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    if (distance(a, b) < 0.1) continue;
    const double alpha = rng.uniform(0.2, kPi - 0.2);
    for (const auto& c : inscribed_angle_circles(a, b, alpha)) {
      EXPECT_NEAR(distance(c.center, a), c.radius, 1e-9);
      EXPECT_NEAR(distance(c.center, b), c.radius, 1e-9);
    }
  }
}

TEST(InscribedAngle, DegenerateChordEmpty) {
  EXPECT_TRUE(inscribed_angle_circles({1, 1}, {1, 1}, 1.0).empty());
}

TEST(InscribedAngle, InvalidAngleThrows) {
  EXPECT_THROW(inscribed_angle_circles({0, 0}, {1, 0}, 0.0),
               hipo::ConfigError);
  EXPECT_THROW(inscribed_angle_circles({0, 0}, {1, 0}, kPi),
               hipo::ConfigError);
}

// Property: every sampled arc point sees the chord under the requested angle.
class ArcPointTest : public ::testing::TestWithParam<int> {};

TEST_P(ArcPointTest, SampledPointsSubtendAlpha) {
  hipo::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  const Vec2 a{rng.uniform(-3, 3), rng.uniform(-3, 3)};
  Vec2 b{rng.uniform(-3, 3), rng.uniform(-3, 3)};
  if (distance(a, b) < 0.5) b = a + Vec2{1.0, 0.3};
  const double alpha = rng.uniform(0.3, 2.6);
  const auto pts = inscribed_angle_arc_points(a, b, alpha, 4);
  EXPECT_FALSE(pts.empty());
  for (const Vec2& p : pts) {
    const Vec2 pa = a - p;
    const Vec2 pb = b - p;
    const double ang = std::acos(
        std::clamp(pa.dot(pb) / (pa.norm() * pb.norm()), -1.0, 1.0));
    EXPECT_NEAR(ang, alpha, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, ArcPointTest, ::testing::Range(0, 12));

TEST(Circle, ContainsAndPointAt) {
  const Circle c({1, 1}, 2.0);
  EXPECT_TRUE(c.contains({1, 1}));
  EXPECT_TRUE(c.contains({3, 1}));
  EXPECT_FALSE(c.contains({3.5, 1}));
  const Vec2 p = c.point_at(kPi / 2.0);
  EXPECT_NEAR(p.x, 1.0, 1e-12);
  EXPECT_NEAR(p.y, 3.0, 1e-12);
}

}  // namespace
}  // namespace hipo::geom
