#include "src/opt/greedy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/util/rng.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::opt {
namespace {

std::vector<pdcs::Candidate> synthetic_candidates(
    const model::Scenario& s, hipo::Rng& rng, std::size_t count) {
  std::vector<pdcs::Candidate> out;
  for (std::size_t i = 0; i < count; ++i) {
    pdcs::Candidate c;
    c.strategy.type = rng.below(s.num_charger_types());
    c.strategy.pos = {rng.uniform(1, 19), rng.uniform(1, 19)};
    c.strategy.orientation = rng.angle();
    for (std::size_t j = 0; j < s.num_devices(); ++j) {
      if (rng.uniform() < 0.4) {
        c.covered.push_back(j);
        c.powers.push_back(rng.uniform(0.004, 0.05));
      }
    }
    out.push_back(c);
  }
  return out;
}

/// Exhaustive optimum of f over independent sets (small instances only).
double brute_force_optimum(const model::Scenario& s,
                           std::span<const pdcs::Candidate> cands) {
  const ChargingObjective f(s, cands);
  const PartitionMatroid matroid = placement_matroid(s, cands);
  const std::size_t n = cands.size();
  double best = 0.0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    std::vector<std::size_t> set;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) set.push_back(i);
    }
    if (!matroid.independent(set)) continue;
    best = std::max(best, f.value(set));
  }
  return best;
}

TEST(Greedy, RespectsBudgets) {
  const auto s = test::simple_scenario();  // budget: 2 chargers of type 0
  hipo::Rng rng(1);
  const auto cands = synthetic_candidates(s, rng, 12);
  for (auto mode :
       {GreedyMode::kPerType, GreedyMode::kGlobal, GreedyMode::kLazyGlobal}) {
    const auto result = select_strategies(s, cands, mode);
    EXPECT_LE(result.selected.size(), 2u);
    s.validate_placement(result.placement);
  }
}

TEST(Greedy, EmptyCandidatesGiveEmptyPlacement) {
  const auto s = test::simple_scenario();
  const std::vector<pdcs::Candidate> none;
  const auto result = select_strategies(s, none);
  EXPECT_TRUE(result.placement.empty());
  EXPECT_DOUBLE_EQ(result.approx_utility, 0.0);
}

TEST(Greedy, LazyMatchesGlobalExactly) {
  const auto s = test::small_paper_scenario(21, 1, 1);
  hipo::Rng rng(2);
  const auto cands = synthetic_candidates(s, rng, 60);
  const auto global = select_strategies(s, cands, GreedyMode::kGlobal);
  const auto lazy = select_strategies(s, cands, GreedyMode::kLazyGlobal);
  EXPECT_EQ(global.selected, lazy.selected);
  EXPECT_NEAR(global.approx_utility, lazy.approx_utility, 1e-12);
}

TEST(Greedy, SelectionOrderHasNonIncreasingGains) {
  const auto s = test::small_paper_scenario(22, 1, 1);
  hipo::Rng rng(3);
  const auto cands = synthetic_candidates(s, rng, 40);
  const auto result = select_strategies(s, cands, GreedyMode::kGlobal);
  const ChargingObjective f(s, cands);
  ChargingObjective::State state(f);
  double prev_gain = 1e9;
  for (std::size_t i : result.selected) {
    const double g = state.gain(i);
    EXPECT_LE(g, prev_gain + 1e-12);
    prev_gain = g;
    state.add(i);
  }
}

TEST(Greedy, ApproxUtilityMatchesObjective) {
  const auto s = test::simple_scenario();
  hipo::Rng rng(4);
  const auto cands = synthetic_candidates(s, rng, 10);
  const auto result = select_strategies(s, cands, GreedyMode::kPerType);
  const ChargingObjective f(s, cands);
  EXPECT_NEAR(result.approx_utility, f.value(result.selected), 1e-12);
}

// The ½-approximation guarantee (Theorem 4.2's combinatorial core), checked
// against the exhaustive optimum on small random instances — for all three
// greedy modes.
class HalfApproxTest
    : public ::testing::TestWithParam<std::tuple<int, GreedyMode>> {};

TEST_P(HalfApproxTest, AtLeastHalfOfOptimum) {
  const auto [seed, mode] = GetParam();
  auto cfg = test::simple_config();
  cfg.charger_types.push_back({geom::kPi, 0.5, 6.0});
  cfg.pair_params.push_back({120.0, 48.0});
  cfg.charger_counts = {2, 1};
  cfg.devices = {test::device_at(10, 10), test::device_at(12, 10),
                 test::device_at(10, 13), test::device_at(14, 14),
                 test::device_at(6, 9)};
  const model::Scenario s(std::move(cfg));
  hipo::Rng rng(static_cast<std::uint64_t>(seed) * 503 + 17);
  const auto cands = synthetic_candidates(s, rng, 12);

  const double opt = brute_force_optimum(s, cands);
  const auto result = select_strategies(s, cands, mode);
  EXPECT_GE(result.approx_utility, 0.5 * opt - 1e-9)
      << "greedy " << result.approx_utility << " vs opt " << opt;
}

INSTANTIATE_TEST_SUITE_P(
    RandomAllModes, HalfApproxTest,
    ::testing::Combine(::testing::Range(0, 12),
                       ::testing::Values(GreedyMode::kPerType,
                                         GreedyMode::kGlobal,
                                         GreedyMode::kLazyGlobal)));

TEST(Greedy, PerTypeFillsTypesInOrder) {
  const auto s = test::small_paper_scenario(23, 1, 1);
  hipo::Rng rng(5);
  const auto cands = synthetic_candidates(s, rng, 60);
  const auto result = select_strategies(s, cands, GreedyMode::kPerType);
  // Selected types must be non-decreasing (Algorithm 3 iterates types).
  std::size_t prev = 0;
  for (std::size_t i : result.selected) {
    EXPECT_GE(cands[i].strategy.type, prev);
    prev = cands[i].strategy.type;
  }
}

TEST(Greedy, LogUtilityKindSelectsValidPlacement) {
  const auto s = test::simple_scenario();
  hipo::Rng rng(6);
  const auto cands = synthetic_candidates(s, rng, 12);
  const auto result = select_strategies(s, cands, GreedyMode::kPerType,
                                        ObjectiveKind::kLogUtility);
  s.validate_placement(result.placement);
  EXPECT_GT(result.approx_utility, 0.0);
}

TEST(Greedy, ZeroBudgetTypeNeverSelected) {
  // Regression (found by hipo_fuzz, pinned in
  // tests/corpus/fuzz-greedy-seed2762782085899333604.hipo): a charger type
  // with count 0 is a zero-capacity matroid part; the global greedy used to
  // argmax into it and trip the tracker's capacity assertion because the
  // retire-peers pass only runs after a part *fills up*.
  auto cfg = test::simple_config();
  cfg.charger_types.push_back({geom::kPi, 2.0, 6.0});
  cfg.pair_params.push_back({100.0, 40.0});
  cfg.charger_counts = {2, 0};
  cfg.devices = {test::device_at(10, 10), test::device_at(12, 10)};
  const model::Scenario s(std::move(cfg));
  hipo::Rng rng(11);
  const auto cands = synthetic_candidates(s, rng, 40);
  for (const auto mode : {GreedyMode::kPerType, GreedyMode::kGlobal,
                          GreedyMode::kLazyGlobal}) {
    const auto result = select_strategies(s, cands, mode);
    for (std::size_t i : result.selected) {
      EXPECT_EQ(cands[i].strategy.type, 0u);
    }
    s.validate_placement(result.placement);
  }
}

TEST(Greedy, LazyMatchesGlobalOnNearTies) {
  // Regression (found by hipo_fuzz, pinned in
  // tests/corpus/fuzz-greedy-seed6414217550488616208.hipo): gains differing
  // by less than the old 1e-15 near-tie band made the eager scan keep the
  // earlier candidate while the lazy heap picked the strictly larger gain.
  // All variants now rank by exact comparison — strictly larger gain wins,
  // exact ties go to the lower index — so the outputs are bit-identical.
  auto cfg = test::simple_config();
  cfg.charger_counts = {1};
  cfg.devices = {test::device_at(10, 10)};
  const model::Scenario s(std::move(cfg));
  std::vector<pdcs::Candidate> cands(2);
  for (auto& c : cands) {
    c.strategy = {{10.0, 12.0}, 0.0, 0};
    c.covered = {0};
  }
  const double p = 0.01;
  cands[0].powers = {p};
  // One ulp more power: the gain difference (~3e-17 after the p_th
  // normalization) is far below the old 1e-15 band but strictly positive.
  cands[1].powers = {std::nextafter(p, 1.0)};
  const auto global = select_strategies(s, cands, GreedyMode::kGlobal);
  const auto lazy = select_strategies(s, cands, GreedyMode::kLazyGlobal);
  ASSERT_EQ(global.selected, lazy.selected);
  EXPECT_EQ(global.selected, (std::vector<std::size_t>{1}));
  EXPECT_EQ(global.approx_utility, lazy.approx_utility);
  EXPECT_EQ(global.exact_utility, lazy.exact_utility);
}

TEST(Greedy, LazyMatchesGlobalOnExactTies) {
  // Bit-identical candidates: exact tie, both variants must take index 0.
  auto cfg = test::simple_config();
  cfg.charger_counts = {1};
  cfg.devices = {test::device_at(10, 10)};
  const model::Scenario s(std::move(cfg));
  std::vector<pdcs::Candidate> cands(2);
  for (auto& c : cands) {
    c.strategy = {{10.0, 12.0}, 0.0, 0};
    c.covered = {0};
    c.powers = {0.01};
  }
  const auto global = select_strategies(s, cands, GreedyMode::kGlobal);
  const auto lazy = select_strategies(s, cands, GreedyMode::kLazyGlobal);
  ASSERT_EQ(global.selected, lazy.selected);
  EXPECT_EQ(global.selected, (std::vector<std::size_t>{0}));
}

}  // namespace
}  // namespace hipo::opt
