#include "src/opt/objective.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.hpp"
#include "tests/test_helpers.hpp"

namespace hipo::opt {
namespace {

// Synthetic candidates over a scenario with known thresholds.
std::vector<pdcs::Candidate> synthetic_candidates(std::size_t num_devices,
                                                  hipo::Rng& rng,
                                                  std::size_t count) {
  std::vector<pdcs::Candidate> out;
  for (std::size_t i = 0; i < count; ++i) {
    pdcs::Candidate c;
    c.strategy.type = 0;
    c.strategy.pos = {1.0 + static_cast<double>(i), 1.0};
    for (std::size_t j = 0; j < num_devices; ++j) {
      if (rng.uniform() < 0.4) {
        c.covered.push_back(j);
        c.powers.push_back(rng.uniform(0.005, 0.06));
      }
    }
    out.push_back(c);
  }
  return out;
}

TEST(Objective, EmptySetIsZero) {
  const auto s = test::simple_scenario();
  hipo::Rng rng(1);
  const auto cands = synthetic_candidates(s.num_devices(), rng, 5);
  const ChargingObjective f(s, cands);
  EXPECT_DOUBLE_EQ(f.value({}), 0.0);
}

TEST(Objective, SingleCandidateValue) {
  const auto s = test::simple_scenario();  // 3 devices, p_th = 0.05
  std::vector<pdcs::Candidate> cands(1);
  cands[0].strategy.type = 0;
  cands[0].covered = {0, 2};
  cands[0].powers = {0.025, 0.1};  // utility 0.5 and 1 (saturated)
  const ChargingObjective f(s, cands);
  const std::vector<std::size_t> sel{0};
  EXPECT_NEAR(f.value(sel), (0.5 + 1.0) / 3.0, 1e-12);
}

TEST(Objective, StateMatchesBatchValue) {
  const auto s = test::simple_scenario();
  hipo::Rng rng(2);
  const auto cands = synthetic_candidates(s.num_devices(), rng, 8);
  const ChargingObjective f(s, cands);
  ChargingObjective::State state(f);
  std::vector<std::size_t> selected;
  for (std::size_t i = 0; i < cands.size(); i += 2) {
    state.add(i);
    selected.push_back(i);
    EXPECT_NEAR(state.value(), f.value(selected), 1e-12);
  }
}

TEST(Objective, GainIsValueDifference) {
  const auto s = test::simple_scenario();
  hipo::Rng rng(3);
  const auto cands = synthetic_candidates(s.num_devices(), rng, 6);
  const ChargingObjective f(s, cands);
  ChargingObjective::State state(f);
  state.add(0);
  const double before = state.value();
  const double g = state.gain(3);
  state.add(3);
  EXPECT_NEAR(state.value() - before, g, 1e-12);
}

TEST(Objective, SaturationCapsGain) {
  const auto s = test::simple_scenario();
  std::vector<pdcs::Candidate> cands(2);
  for (auto& c : cands) {
    c.strategy.type = 0;
    c.covered = {0};
    c.powers = {0.05};  // exactly saturates p_th
  }
  const ChargingObjective f(s, cands);
  ChargingObjective::State state(f);
  EXPECT_GT(state.gain(0), 0.0);
  state.add(0);
  EXPECT_DOUBLE_EQ(state.gain(1), 0.0);  // already saturated
}

// Properties on random instances: normalized, monotone, submodular — the
// three conditions of Definition 4.5 / Lemma 4.6, for both objective kinds.
class SubmodularityTest
    : public ::testing::TestWithParam<std::tuple<int, ObjectiveKind>> {};

TEST_P(SubmodularityTest, MonotoneAndSubmodular) {
  const auto [seed, kind] = GetParam();
  const auto s = test::simple_scenario();
  hipo::Rng rng(static_cast<std::uint64_t>(seed) * 211 + 3);
  const auto cands = synthetic_candidates(s.num_devices(), rng, 10);
  const ChargingObjective f(s, cands, kind);

  for (int trial = 0; trial < 100; ++trial) {
    // Random chain A ⊆ B and element e ∉ B.
    std::vector<std::size_t> a, b;
    const std::size_t e = rng.below(cands.size());
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (i == e) continue;
      const double u = rng.uniform();
      if (u < 0.3) {
        a.push_back(i);
        b.push_back(i);
      } else if (u < 0.6) {
        b.push_back(i);
      }
    }
    ChargingObjective::State sa(f), sb(f);
    for (std::size_t i : a) sa.add(i);
    for (std::size_t i : b) sb.add(i);
    const double gain_a = sa.gain(e);
    const double gain_b = sb.gain(e);
    EXPECT_GE(gain_a, -1e-12);                 // monotone
    EXPECT_GE(gain_a, gain_b - 1e-12);         // submodular
    EXPECT_GE(sb.value(), sa.value() - 1e-12); // monotone in sets
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomBothKinds, SubmodularityTest,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(ObjectiveKind::kUtility,
                                         ObjectiveKind::kLogUtility)));

TEST(Objective, LogUtilityLowerThanLinear) {
  const auto s = test::simple_scenario();
  hipo::Rng rng(9);
  const auto cands = synthetic_candidates(s.num_devices(), rng, 6);
  const ChargingObjective lin(s, cands, ObjectiveKind::kUtility);
  const ChargingObjective log_f(s, cands, ObjectiveKind::kLogUtility);
  std::vector<std::size_t> all;
  for (std::size_t i = 0; i < cands.size(); ++i) all.push_back(i);
  // log(1+u) <= u for u >= 0.
  EXPECT_LE(log_f.value(all), lin.value(all) + 1e-12);
}

}  // namespace
}  // namespace hipo::opt
