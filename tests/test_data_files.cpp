// The scenario files shipped in data/ must parse, validate, solve, and
// round-trip — they are the CLI's advertised entry point.
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/solver.hpp"
#include "src/model/io.hpp"

#ifndef HIPO_DATA_DIR
#error "HIPO_DATA_DIR must be defined by the build"
#endif

namespace hipo {
namespace {

class DataFileTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DataFileTest, ParsesAndValidates) {
  const std::string path = std::string(HIPO_DATA_DIR) + "/" + GetParam();
  const auto scenario = model::read_scenario_file(path);
  EXPECT_GT(scenario.num_devices(), 0u);
  EXPECT_GT(scenario.num_chargers(), 0u);
  EXPECT_GT(scenario.num_obstacles(), 0u);
}

TEST_P(DataFileTest, SolvesWithPositiveUtility) {
  const std::string path = std::string(HIPO_DATA_DIR) + "/" + GetParam();
  const auto scenario = model::read_scenario_file(path);
  const auto result = core::solve(scenario);
  scenario.validate_placement(result.placement);
  EXPECT_GT(result.utility, 0.3) << path;
}

TEST_P(DataFileTest, RoundTripsExactly) {
  const std::string path = std::string(HIPO_DATA_DIR) + "/" + GetParam();
  const auto scenario = model::read_scenario_file(path);
  std::stringstream buffer;
  model::write_scenario(buffer, scenario);
  const auto restored = model::read_scenario(buffer);
  ASSERT_EQ(restored.num_devices(), scenario.num_devices());
  for (std::size_t j = 0; j < scenario.num_devices(); ++j) {
    EXPECT_EQ(restored.device(j).pos, scenario.device(j).pos);
    EXPECT_EQ(restored.device(j).weight, scenario.device(j).weight);
  }
}

INSTANTIATE_TEST_SUITE_P(Shipped, DataFileTest,
                         ::testing::Values("office.hipo", "courtyard.hipo"));

}  // namespace
}  // namespace hipo
