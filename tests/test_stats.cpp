#include "src/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace hipo {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, MatchesDirectComputation) {
  Rng rng(3);
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 9.0);
    xs.push_back(x);
    s.add(x);
  }
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double m = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  const double var = ss / static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), m, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-9);
}

TEST(RunningStats, MinMaxTracked) {
  RunningStats s;
  for (double x : {3.0, -1.0, 7.0, 2.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  Rng rng(4);
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.normal());
  for (int i = 0; i < 1000; ++i) large.add(rng.normal());
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(RunningStats, AllEqualSamplesHaveZeroSpread) {
  RunningStats s;
  for (int i = 0; i < 100; ++i) s.add(2.5);
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.ci95_half_width(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.5);
  EXPECT_DOUBLE_EQ(s.max(), 2.5);
}

TEST(Stats, MeanAndStddevFreeFunctions) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Percentile, Endpoints) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 73.0), 42.0);
}

TEST(Percentile, AllEqualValues) {
  const std::vector<double> xs(7, 3.25);
  for (const double p : {0.0, 12.5, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile(xs, p), 3.25);
  }
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 50.0), ConfigError);
  const std::vector<double> xs{1.0};
  EXPECT_THROW(percentile(xs, -1.0), ConfigError);
  EXPECT_THROW(percentile(xs, 101.0), ConfigError);
}

TEST(Ecdf, StepsThroughSample) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ts{0.5, 1.0, 2.5, 4.0, 9.0};
  const auto cdf = ecdf(xs, ts);
  ASSERT_EQ(cdf.size(), 5u);
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.25);
  EXPECT_DOUBLE_EQ(cdf[2], 0.5);
  EXPECT_DOUBLE_EQ(cdf[3], 1.0);
  EXPECT_DOUBLE_EQ(cdf[4], 1.0);
}

TEST(Ecdf, AllEqualSampleIsStepFunction) {
  const std::vector<double> xs(5, 2.0);
  const std::vector<double> ts{1.9, 2.0, 2.1};
  const auto cdf = ecdf(xs, ts);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 1.0);
  EXPECT_DOUBLE_EQ(cdf[2], 1.0);
}

TEST(Ecdf, EmptySampleGivesZeros) {
  const std::vector<double> ts{1.0, 2.0};
  const auto cdf = ecdf({}, ts);
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.0);
}

TEST(Linspace, EndpointsExact) {
  const auto v = linspace(0.1, 0.9, 9);
  ASSERT_EQ(v.size(), 9u);
  EXPECT_DOUBLE_EQ(v.front(), 0.1);
  EXPECT_DOUBLE_EQ(v.back(), 0.9);
  for (std::size_t i = 1; i < v.size(); ++i) {
    EXPECT_NEAR(v[i] - v[i - 1], 0.1, 1e-12);
  }
}

TEST(Linspace, SinglePoint) {
  const auto v = linspace(3.0, 5.0, 1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 3.0);
}

TEST(Linspace, ZeroThrows) { EXPECT_THROW(linspace(0, 1, 0), ConfigError); }

}  // namespace
}  // namespace hipo
