// End-to-end properties of the HIPO pipeline that cut across modules:
// the Theorem 4.1/4.2 quality story checked against brute force and random
// search on real (non-synthetic) extractions.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/solver.hpp"
#include "src/opt/local_search.hpp"
#include "src/pdcs/extract.hpp"
#include "src/util/rng.hpp"
#include "tests/test_helpers.hpp"

namespace hipo {
namespace {

/// Brute-force optimum over the extracted candidates (tiny instances).
double exhaustive_optimum(const model::Scenario& s,
                          std::span<const pdcs::Candidate> candidates) {
  const opt::ChargingObjective f(s, candidates);
  const opt::PartitionMatroid matroid = opt::placement_matroid(s, candidates);
  const std::size_t n = candidates.size();
  double best = 0.0;
  HIPO_ASSERT(n <= 22);
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcountll(mask)) > matroid.rank())
      continue;
    std::vector<std::size_t> set;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) set.push_back(i);
    }
    if (!matroid.independent(set)) continue;
    best = std::max(best, f.value(set));
  }
  return best;
}

// Theorem 4.2 on real extractions: greedy f(X) >= (1/2)·OPT over the
// candidate set, verified exhaustively on tiny instances.
class EndToEndHalfApprox : public ::testing::TestWithParam<int> {};

TEST_P(EndToEndHalfApprox, GreedyWithinHalfOfCandidateOptimum) {
  // Tiny hand-rolled scenario so the candidate set stays enumerable.
  auto cfg = test::simple_config();
  cfg.charger_counts = {2};
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 883 + 11);
  cfg.devices.clear();
  for (int i = 0; i < 3; ++i) {
    cfg.devices.push_back(test::device_at(rng.uniform(6, 14),
                                          rng.uniform(6, 14)));
  }
  if (GetParam() % 2 == 0) {
    cfg.obstacles = {geom::make_rect({9.5, 9.5}, {10.5, 10.5})};
    // Re-sample devices that ended up inside the obstacle.
    for (auto& d : cfg.devices) {
      while (cfg.obstacles[0].contains(d.pos)) {
        d.pos = {rng.uniform(6, 14), rng.uniform(6, 14)};
      }
    }
  }
  const model::Scenario s(std::move(cfg));
  auto extraction = pdcs::extract_all(s);
  if (extraction.candidates.size() > 22) {
    // Keep the instance enumerable: truncation can only hurt greedy (it
    // sees fewer options than the optimum we enumerate over the same set).
    extraction.candidates.resize(22);
  }
  const double opt_value = exhaustive_optimum(s, extraction.candidates);
  for (auto mode : {opt::GreedyMode::kPerType, opt::GreedyMode::kGlobal,
                    opt::GreedyMode::kLazyGlobal}) {
    const auto greedy =
        opt::select_strategies(s, extraction.candidates, mode);
    EXPECT_GE(greedy.approx_utility, 0.5 * opt_value - 1e-9)
        << "mode " << static_cast<int>(mode);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, EndToEndHalfApprox, ::testing::Range(0, 10));

// HIPO must beat random search with the same budget: the PDCS candidate set
// plus greedy is at least as good as the best of many random placements.
class BeatsRandomSearch : public ::testing::TestWithParam<int> {};

TEST_P(BeatsRandomSearch, HipoAtLeastBestOfRandom) {
  const auto s = test::small_paper_scenario(
      static_cast<std::uint64_t>(GetParam()) + 700, 1, 1);
  const auto hipo_result = core::solve(s);

  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  double best_random = 0.0;
  for (int trial = 0; trial < 200; ++trial) {
    model::Placement placement;
    for (std::size_t q = 0; q < s.num_charger_types(); ++q) {
      for (int c = 0; c < s.charger_count(q); ++c) {
        for (;;) {
          const geom::Vec2 p{rng.uniform(0, 40), rng.uniform(0, 40)};
          if (s.position_feasible(p)) {
            placement.push_back({p, rng.angle(), q});
            break;
          }
        }
      }
    }
    best_random = std::max(best_random, s.placement_utility(placement));
  }
  EXPECT_GE(hipo_result.utility, best_random - 0.02)
      << "random search found " << best_random << " vs HIPO "
      << hipo_result.utility;
}

INSTANTIATE_TEST_SUITE_P(Random, BeatsRandomSearch, ::testing::Range(0, 6));

// Approximation-chain consistency on full solves: the exact utility of the
// returned placement is within [approx, (1+ε₁)·approx].
class ApproximationChain : public ::testing::TestWithParam<double> {};

TEST_P(ApproximationChain, Lemma43HoldsOnSolutions) {
  model::GenOptions gen;
  gen.device_multiplier = 1;
  gen.eps = GetParam();
  Rng rng(81);
  const auto s = model::make_paper_scenario(gen, rng);
  const auto result = core::solve(s);
  EXPECT_LE(result.approx_utility, result.utility + 1e-9);
  EXPECT_GE(result.utility * (1.0 + s.eps1()),
            result.approx_utility - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, ApproximationChain,
                         ::testing::Values(0.05, 0.15, 0.3, 0.45));

// Scaling the charger budget by including all previous candidates keeps the
// pipeline monotone end to end (devices fixed).
TEST(PipelineMonotonicity, UtilityGrowsWithBudgetAcrossScales) {
  double prev = 0.0;
  for (int mult : {1, 2, 4}) {
    model::GenOptions gen;
    gen.device_multiplier = 2;
    gen.charger_multiplier = mult;
    Rng rng(4242);
    const auto s = model::make_paper_scenario(gen, rng);
    const double u = core::solve(s).utility;
    EXPECT_GE(u, prev - 1e-9) << "budget x" << mult;
    prev = u;
  }
}

// The local search never moves a solution out of feasibility and composes
// with every greedy mode.
TEST(PipelineLocalSearch, ComposesWithAllModes) {
  const auto s = test::small_paper_scenario(801, 1, 1);
  const auto extraction = pdcs::extract_all(s);
  for (auto mode : {opt::GreedyMode::kPerType, opt::GreedyMode::kGlobal,
                    opt::GreedyMode::kLazyGlobal}) {
    const auto start = opt::select_strategies(s, extraction.candidates, mode);
    const auto improved =
        opt::local_search_improve(s, extraction.candidates, start);
    s.validate_placement(improved.result.placement);
    EXPECT_GE(improved.result.approx_utility, start.approx_utility - 1e-12);
  }
}

}  // namespace
}  // namespace hipo
