#include "src/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace hipo {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(99);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(99);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 12.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 12.25);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(12);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMoments) {
  Rng rng(14);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, AngleInTwoPi) {
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.angle();
    EXPECT_GE(a, 0.0);
    EXPECT_LT(a, 6.2831853072);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(16);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(w, v);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(w, v);
}

TEST(Rng, SeedCombineOrderSensitive) {
  EXPECT_NE(seed_combine(1, 2), seed_combine(2, 1));
  EXPECT_NE(seed_combine(1, 2, 3), seed_combine(1, 2, 4));
}

TEST(Rng, SplitMix64KnownValue) {
  // Reference values from the splitmix64 reference implementation.
  std::uint64_t state = 0;
  const std::uint64_t v = splitmix64(state);
  EXPECT_EQ(state, 0x9e3779b97f4a7c15ULL);
  EXPECT_NE(v, 0u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(17);
  EXPECT_THROW(rng.below(0), InvariantError);
}

}  // namespace
}  // namespace hipo
