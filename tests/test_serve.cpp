// hipo::serve — wire JSON parser strictness, frame codec, LRU cache
// semantics, and the Service/Server request paths. The headline contract:
// served placements (cold miss, warm hit, post-delta) are byte-identical to
// what core::solve / opt::DeltaSolver produce directly.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/solver.hpp"
#include "src/model/io.hpp"
#include "src/obs/log.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/opt/delta.hpp"
#include "src/parallel/thread_pool.hpp"
#include "src/serve/cache.hpp"
#include "src/serve/hash.hpp"
#include "src/serve/server.hpp"
#include "src/serve/service.hpp"
#include "src/serve/wire.hpp"
#include "src/util/error.hpp"
#include "tests/test_helpers.hpp"

namespace hipo {
namespace {

// --- wire: parser ---------------------------------------------------------

TEST(WireJson, ParsesDocumentsAndAccessesFields) {
  const serve::Json doc = serve::parse_json(
      R"({"b":true,"n":-1.5e2,"s":"a\"\\\nAb","arr":[1,2],"o":{"k":null}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.find("b")->as_bool());
  EXPECT_EQ(doc.find("n")->as_number(), -150.0);
  EXPECT_EQ(doc.find("s")->as_string(), "a\"\\\nAb");
  EXPECT_EQ(doc.find("arr")->as_array().size(), 2u);
  EXPECT_TRUE(doc.find("o")->find("k")->is_null());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(WireJson, RejectsMalformedDocumentsWithByteOffsets) {
  const auto expect_fails = [](const std::string& text) {
    try {
      serve::parse_json(text);
      ADD_FAILURE() << "accepted: " << text;
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos)
          << e.what();
    }
  };
  expect_fails("");
  expect_fails("{");
  expect_fails("{\"a\":1,}");
  expect_fails("{\"a\" 1}");
  expect_fails("[1 2]");
  expect_fails("{\"a\":1} trailing");
  expect_fails("{\"a\":nan}");
  expect_fails("{\"a\":1e999}");          // non-finite number
  expect_fails("{\"a\":1,\"a\":2}");      // duplicate key
  expect_fails("\"unterminated");
  expect_fails("{\"bad\\q\":1}");         // unknown escape
  expect_fails("tru");
}

TEST(WireJson, DumpIsCanonicalAndRoundTrips) {
  serve::Json doc = serve::Json::object();
  doc.set("zeta", serve::Json::number(1.0));
  doc.set("alpha", serve::Json::string("x\"y\n"));
  serve::Json arr = serve::Json::array();
  arr.push(serve::Json::boolean(false));
  arr.push(serve::Json::null());
  doc.set("list", std::move(arr));
  const std::string text = doc.dump();
  // Keys come out sorted, so equal documents dump to equal bytes.
  EXPECT_LT(text.find("alpha"), text.find("list"));
  EXPECT_LT(text.find("list"), text.find("zeta"));
  const serve::Json again = serve::parse_json(text);
  EXPECT_EQ(again.dump(), text);
}

// --- wire: framing --------------------------------------------------------

TEST(WireFrame, HeaderRoundTripsBigEndian) {
  unsigned char header[serve::kFrameHeaderBytes];
  serve::encode_frame_header(0x01020304u, header);
  EXPECT_EQ(header[0], 0x01);
  EXPECT_EQ(header[1], 0x02);
  EXPECT_EQ(header[2], 0x03);
  EXPECT_EQ(header[3], 0x04);
  EXPECT_EQ(serve::decode_frame_header(header, 1u << 30), 0x01020304u);
}

TEST(WireFrame, RejectsOversizedFrames) {
  unsigned char header[serve::kFrameHeaderBytes];
  serve::encode_frame_header(1025, header);
  EXPECT_THROW(serve::decode_frame_header(header, 1024), ConfigError);
  EXPECT_EQ(serve::decode_frame_header(header, 1025), 1025u);
}

// --- cache ----------------------------------------------------------------

std::shared_ptr<serve::CacheEntry> make_entry(parallel::ThreadPool* pool) {
  opt::DeltaOptions opts;
  opts.workers = pool;
  return std::make_shared<serve::CacheEntry>(
      opt::DeltaSolver(test::simple_scenario().to_config(), std::move(opts)));
}

TEST(ScenarioCache, LruEvictsOldestAndTouchRefreshes) {
  parallel::ThreadPool pool(1);
  serve::ScenarioCache cache(2);
  auto e = make_entry(&pool);
  cache.insert("aaaaaaaaaaaaaaaa", e);
  cache.insert("bbbbbbbbbbbbbbbb", e);
  EXPECT_NE(cache.find("aaaaaaaaaaaaaaaa"), nullptr);  // touch: a is MRU
  cache.insert("cccccccccccccccc", e);                 // evicts b
  EXPECT_NE(cache.find("aaaaaaaaaaaaaaaa"), nullptr);
  EXPECT_EQ(cache.find("bbbbbbbbbbbbbbbb"), nullptr);
  EXPECT_NE(cache.find("cccccccccccccccc"), nullptr);
  const serve::CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.capacity, 2u);
}

TEST(ScenarioCache, RekeyMovesAndSupersedes) {
  parallel::ThreadPool pool(1);
  serve::ScenarioCache cache(4);
  auto e1 = make_entry(&pool);
  auto e2 = make_entry(&pool);
  cache.insert("aaaaaaaaaaaaaaaa", e1);
  cache.insert("bbbbbbbbbbbbbbbb", e2);
  cache.rekey("aaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbb");
  EXPECT_EQ(cache.find("aaaaaaaaaaaaaaaa"), nullptr);
  EXPECT_EQ(cache.find("bbbbbbbbbbbbbbbb"), e1);  // the rekeyed entry wins
  EXPECT_EQ(cache.stats().entries, 1u);
  // Rekey of an absent key is a no-op (entry evicted mid-request).
  cache.rekey("cccccccccccccccc", "dddddddddddddddd");
  EXPECT_EQ(cache.find("dddddddddddddddd"), nullptr);
}

TEST(ScenarioCache, ZeroCapacityDisablesCaching) {
  parallel::ThreadPool pool(1);
  serve::ScenarioCache cache(0);
  auto e = make_entry(&pool);
  EXPECT_EQ(cache.insert("aaaaaaaaaaaaaaaa", e), e);  // returned unstored
  EXPECT_EQ(cache.find("aaaaaaaaaaaaaaaa"), nullptr);
}

// --- service --------------------------------------------------------------

std::string scenario_text(const model::Scenario& scenario) {
  std::ostringstream os;
  model::write_scenario(os, scenario);
  return os.str();
}

std::string placement_bytes(const model::Placement& placement) {
  std::ostringstream os;
  model::write_placement(os, placement);
  return os.str();
}

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() : pool_(2) {
    serve::ServiceOptions opts;
    opts.cache_entries = 4;
    opts.max_inflight = 4;
    opts.pool = &pool_;
    service_ = std::make_unique<serve::Service>(opts);
  }

  serve::Json call(const std::string& request) {
    return serve::parse_json(service_->handle(request));
  }

  serve::Json call_ok(const std::string& request) {
    const serve::Json resp = call(request);
    EXPECT_TRUE(resp.find("ok") != nullptr && resp.find("ok")->as_bool())
        << service_->handle(request);
    return resp;
  }

  parallel::ThreadPool pool_;
  std::unique_ptr<serve::Service> service_;
};

TEST_F(ServiceTest, SolveColdThenWarmMatchesCoreSolveByteForByte) {
  const model::Scenario scenario = test::simple_scenario();
  core::SolveOptions copts;
  copts.pool = &pool_;
  const std::string reference =
      placement_bytes(core::solve(scenario, copts).placement);

  serve::Json req = serve::Json::object();
  req.set("type", serve::Json::string("solve"));
  req.set("scenario", serve::Json::string(scenario_text(scenario)));
  const serve::Json cold = call_ok(req.dump());
  EXPECT_EQ(cold.find("cache")->as_string(), "miss");
  EXPECT_EQ(cold.find("placement_text")->as_string(), reference);
  EXPECT_EQ(cold.find("key")->as_string(), serve::scenario_key(scenario));

  const serve::Json warm = call_ok(req.dump());
  EXPECT_EQ(warm.find("cache")->as_string(), "hit");
  EXPECT_EQ(warm.find("placement_text")->as_string(), reference);

  // Key-only resolve (no scenario bytes on the wire) hits the same entry.
  serve::Json by_key = serve::Json::object();
  by_key.set("type", serve::Json::string("solve"));
  by_key.set("key", *cold.find("key"));
  const serve::Json keyed = call_ok(by_key.dump());
  EXPECT_EQ(keyed.find("placement_text")->as_string(), reference);
}

TEST_F(ServiceTest, DeltaMatchesDirectDeltaSolverAndRekeys) {
  const model::Scenario scenario = test::simple_scenario();

  serve::Json solve = serve::Json::object();
  solve.set("type", serve::Json::string("solve"));
  solve.set("scenario", serve::Json::string(scenario_text(scenario)));
  const std::string base_key =
      call_ok(solve.dump()).find("key")->as_string();

  const std::string script =
      "{\"op\":\"add_device\",\"x\":8.0,\"y\":11.0}\n"
      "{\"op\":\"move_device\",\"index\":0,\"x\":9.5,\"y\":10.5}\n";

  // Direct reference: same ops through a DeltaSolver.
  opt::DeltaOptions dopts;
  dopts.workers = &pool_;
  opt::DeltaSolver reference(scenario.to_config(), std::move(dopts));
  for (const auto& op : opt::parse_delta_script(script)) reference.apply(op);

  serve::Json delta = serve::Json::object();
  delta.set("type", serve::Json::string("delta"));
  delta.set("key", serve::Json::string(base_key));
  delta.set("script", serve::Json::string(script));
  const serve::Json resp = call_ok(delta.dump());
  EXPECT_EQ(resp.find("ops")->as_number(), 2.0);
  EXPECT_EQ(resp.find("base_key")->as_string(), base_key);
  EXPECT_EQ(resp.find("placement_text")->as_string(),
            placement_bytes(reference.result().placement));
  const std::string new_key = resp.find("key")->as_string();
  EXPECT_EQ(new_key, serve::scenario_key(reference.scenario()));
  EXPECT_NE(new_key, base_key);

  // The entry moved: the old key is gone, the new key solves warm.
  serve::Json stale = serve::Json::object();
  stale.set("type", serve::Json::string("solve"));
  stale.set("key", serve::Json::string(base_key));
  EXPECT_EQ(call(stale.dump()).find("error")->as_string(), "unknown_key");

  serve::Json fresh = serve::Json::object();
  fresh.set("type", serve::Json::string("solve"));
  fresh.set("key", serve::Json::string(new_key));
  EXPECT_EQ(call_ok(fresh.dump()).find("placement_text")->as_string(),
            placement_bytes(reference.result().placement));
}

TEST_F(ServiceTest, DeltaMidScriptFailureReportsOpAndRekeys) {
  const model::Scenario scenario = test::simple_scenario();
  serve::Json solve = serve::Json::object();
  solve.set("type", serve::Json::string("solve"));
  solve.set("scenario", serve::Json::string(scenario_text(scenario)));
  const std::string base_key =
      call_ok(solve.dump()).find("key")->as_string();

  // Op 1 applies; op 2 removes an out-of-range device and fails.
  const std::string script =
      "{\"op\":\"add_device\",\"x\":8.0,\"y\":11.0}\n"
      "{\"op\":\"remove_device\",\"index\":99}\n";
  serve::Json delta = serve::Json::object();
  delta.set("type", serve::Json::string("delta"));
  delta.set("key", serve::Json::string(base_key));
  delta.set("script", serve::Json::string(script));
  const serve::Json resp = call(delta.dump());
  EXPECT_FALSE(resp.find("ok")->as_bool());
  EXPECT_NE(resp.find("message")->as_string().find("delta op 2 of 2"),
            std::string::npos);
  EXPECT_EQ(resp.find("applied")->as_number(), 1.0);
  // The cache invariant survives the partial failure: the response's key is
  // the hash of the mutated scenario and still resolves.
  serve::Json fresh = serve::Json::object();
  fresh.set("type", serve::Json::string("solve"));
  fresh.set("key", *resp.find("key"));
  call_ok(fresh.dump());
}

TEST_F(ServiceTest, EvalInlineAndByKey) {
  const model::Scenario scenario = test::simple_scenario();
  serve::Json solve = serve::Json::object();
  solve.set("type", serve::Json::string("solve"));
  solve.set("scenario", serve::Json::string(scenario_text(scenario)));
  const serve::Json solved = call_ok(solve.dump());

  serve::Json eval = serve::Json::object();
  eval.set("type", serve::Json::string("eval"));
  eval.set("key", *solved.find("key"));
  eval.set("placement", *solved.find("placement"));
  eval.set("per_device", serve::Json::boolean(true));
  const serve::Json by_key = call_ok(eval.dump());
  EXPECT_EQ(by_key.find("utility")->as_number(),
            solved.find("utility")->as_number());
  EXPECT_EQ(by_key.find("per_device_utility")->as_array().size(),
            scenario.num_devices());

  serve::Json inline_eval = serve::Json::object();
  inline_eval.set("type", serve::Json::string("eval"));
  inline_eval.set("scenario", serve::Json::string(scenario_text(scenario)));
  inline_eval.set("placement", *solved.find("placement"));
  EXPECT_EQ(call_ok(inline_eval.dump()).find("utility")->as_number(),
            solved.find("utility")->as_number());
}

TEST_F(ServiceTest, MalformedRequestsGetErrorResponsesNotThrows) {
  EXPECT_EQ(call("not json at all").find("error")->as_string(),
            "bad_request");
  EXPECT_EQ(call("[1,2,3]").find("error")->as_string(), "bad_request");
  EXPECT_EQ(call("{\"no_type\":1}").find("error")->as_string(),
            "bad_request");
  EXPECT_EQ(call("{\"type\":\"frobnicate\"}").find("error")->as_string(),
            "bad_request");
  EXPECT_EQ(call("{\"type\":\"solve\"}").find("error")->as_string(),
            "bad_request");
  serve::Json bad_key = serve::Json::object();
  bad_key.set("type", serve::Json::string("solve"));
  bad_key.set("key", serve::Json::string("NOT-A-KEY"));
  EXPECT_EQ(call(bad_key.dump()).find("error")->as_string(), "bad_request");
  // The id is echoed even on errors so pipelined clients can match frames.
  const serve::Json resp =
      call("{\"id\":\"req-7\",\"type\":\"frobnicate\"}");
  EXPECT_EQ(resp.find("id")->as_string(), "req-7");
  EXPECT_GE(service_->stats().errors, 6u);
}

TEST_F(ServiceTest, StatsCountsRequestsAndCacheTraffic) {
  const model::Scenario scenario = test::simple_scenario();
  serve::Json solve = serve::Json::object();
  solve.set("type", serve::Json::string("solve"));
  solve.set("scenario", serve::Json::string(scenario_text(scenario)));
  call_ok(solve.dump());
  call_ok(solve.dump());
  const serve::Json stats = call_ok("{\"type\":\"stats\"}");
  EXPECT_EQ(stats.find("solves_cold")->as_number(), 1.0);
  EXPECT_EQ(stats.find("solves_warm")->as_number(), 1.0);
  EXPECT_EQ(stats.find("cache")->find("misses")->as_number(), 1.0);
  EXPECT_EQ(stats.find("cache")->find("hits")->as_number(), 1.0);
  EXPECT_EQ(stats.find("cache")->find("entries")->as_number(), 1.0);
  const serve::ServiceStats s = service_->stats();
  EXPECT_EQ(s.solves_cold, 1u);
  EXPECT_EQ(s.solves_warm, 1u);
}

TEST_F(ServiceTest, ShutdownRequestFlagsTheService) {
  EXPECT_FALSE(service_->shutdown_requested());
  call_ok("{\"type\":\"shutdown\"}");
  EXPECT_TRUE(service_->shutdown_requested());
}

TEST(ServiceAdmission, OverloadedRequestsAreRejectedNotQueued) {
  // max_inflight = 0 rejects every compute request (the drain-only
  // configuration) while control requests still work — the deterministic
  // way to pin the overload response shape.
  parallel::ThreadPool pool(2);
  serve::ServiceOptions opts;
  opts.cache_entries = 2;
  opts.max_inflight = 0;
  opts.pool = &pool;
  serve::Service service(opts);

  serve::Json solve = serve::Json::object();
  solve.set("type", serve::Json::string("solve"));
  solve.set("scenario",
            serve::Json::string(scenario_text(test::simple_scenario())));
  const serve::Json resp = serve::parse_json(service.handle(solve.dump()));
  EXPECT_FALSE(resp.find("ok")->as_bool());
  EXPECT_EQ(resp.find("error")->as_string(), "overloaded");
  EXPECT_EQ(service.stats().rejected, 1u);
  // stats (control plane) bypasses admission.
  const serve::Json stats =
      serve::parse_json(service.handle("{\"type\":\"stats\"}"));
  EXPECT_TRUE(stats.find("ok")->as_bool());
}

TEST(ServiceConcurrency, ParallelMixedRequestsStayDeterministic) {
  parallel::ThreadPool pool(4);
  serve::ServiceOptions opts;
  opts.cache_entries = 4;
  opts.max_inflight = 8;
  opts.pool = &pool;
  serve::Service service(opts);

  const model::Scenario a = test::simple_scenario();
  const model::Scenario b = test::blocked_scenario();
  core::SolveOptions copts;
  copts.pool = &pool;
  const std::string ref_a = placement_bytes(core::solve(a, copts).placement);
  const std::string ref_b = placement_bytes(core::solve(b, copts).placement);

  serve::Json req_a = serve::Json::object();
  req_a.set("type", serve::Json::string("solve"));
  req_a.set("scenario", serve::Json::string(scenario_text(a)));
  serve::Json req_b = serve::Json::object();
  req_b.set("type", serve::Json::string("solve"));
  req_b.set("scenario", serve::Json::string(scenario_text(b)));

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      const std::string& want = (i % 2 == 0) ? ref_a : ref_b;
      const std::string request =
          (i % 2 == 0) ? req_a.dump() : req_b.dump();
      for (int r = 0; r < 3; ++r) {
        const serve::Json resp = serve::parse_json(service.handle(request));
        if (!resp.find("ok")->as_bool() ||
            resp.find("placement_text")->as_string() != want) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const serve::ServiceStats s = service.stats();
  EXPECT_EQ(s.solves_cold + s.solves_warm,
            static_cast<std::uint64_t>(kThreads * 3));
}

// --- observability --------------------------------------------------------

TEST_F(ServiceTest, EveryResponseCarriesAMonotonicRequestId) {
  EXPECT_EQ(call_ok("{\"type\":\"stats\"}").find("request_id")->as_string(),
            "r1");
  EXPECT_EQ(call_ok("{\"type\":\"stats\"}").find("request_id")->as_string(),
            "r2");
  // Errors are numbered too — the id is the envelope, not a success field.
  const serve::Json bad = call("not json at all");
  EXPECT_EQ(bad.find("request_id")->as_string(), "r3");
  EXPECT_EQ(bad.find("error")->as_string(), "bad_request");
}

TEST(ServiceObservability, FullObservabilityDoesNotChangeServedBytes) {
  // The acceptance contract: logging + flight recorder + metrics + tracing
  // all on, response bytes identical to a bare service (same request ids,
  // same placement bytes).
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  obs::reset_trace();
  parallel::ThreadPool pool(2);

  serve::ServiceOptions plain_opts;
  plain_opts.cache_entries = 4;
  plain_opts.max_inflight = 4;
  plain_opts.pool = &pool;
  serve::Service plain(plain_opts);

  std::ostringstream sink;
  obs::log::Logger logger(sink,
                          {.min_level = obs::log::Level::kDebug});
  serve::ServiceOptions obs_opts = plain_opts;
  obs_opts.logger = &logger;
  obs_opts.flight_entries = 16;
  serve::Service observed(obs_opts);

  serve::Json solve = serve::Json::object();
  solve.set("type", serve::Json::string("solve"));
  solve.set("scenario",
            serve::Json::string(scenario_text(test::simple_scenario())));
  const std::string request = solve.dump();

  // Cold, then warm, then an error — byte-identical at every step.
  EXPECT_EQ(plain.handle(request), observed.handle(request));
  EXPECT_EQ(plain.handle(request), observed.handle(request));
  EXPECT_EQ(plain.handle("{\"type\":\"frobnicate\"}"),
            observed.handle("{\"type\":\"frobnicate\"}"));

  logger.flush();
  obs::set_metrics_enabled(false);
  obs::set_trace_enabled(false);

  // The observed service wrote one record per request, matching the
  // responses: r1 cold miss, r2 warm hit, r3 error.
  std::vector<std::string> lines;
  {
    std::istringstream is(sink.str());
    std::string line;
    while (std::getline(is, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 3u);
  const serve::Json rec1 = serve::parse_json(lines[0]);
  EXPECT_EQ(rec1.find("request_id")->as_string(), "r1");
  EXPECT_EQ(rec1.find("type")->as_string(), "solve");
  EXPECT_EQ(rec1.find("cache")->as_string(), "miss");
  EXPECT_EQ(rec1.find("admission")->as_string(), "admitted");
  EXPECT_TRUE(rec1.find("ok")->as_bool());
  EXPECT_GT(rec1.find("seconds")->as_number(), 0.0);
  EXPECT_GT(rec1.find("bytes_in")->as_number(), 0.0);
  EXPECT_GT(rec1.find("bytes_out")->as_number(), 0.0);
  EXPECT_EQ(rec1.find("key")->as_string(),
            serve::scenario_key(test::simple_scenario()));
  const serve::Json rec2 = serve::parse_json(lines[1]);
  EXPECT_EQ(rec2.find("cache")->as_string(), "hit");
  const serve::Json rec3 = serve::parse_json(lines[2]);
  EXPECT_EQ(rec3.find("request_id")->as_string(), "r3");
  EXPECT_EQ(rec3.find("level")->as_string(), "error");
  EXPECT_EQ(rec3.find("error")->as_string(), "bad_request");
  EXPECT_FALSE(rec3.find("ok")->as_bool());

  // Trace correlation: the solver phases of request r1 were emitted on its
  // per-request track (tid = 100000 + 1).
  std::ostringstream trace;
  obs::write_trace_json(trace);
  EXPECT_NE(trace.str().find("\"tid\":100001"), std::string::npos);
  EXPECT_NE(trace.str().find("\"request_id\":\"r1\""), std::string::npos);
  obs::reset_trace();

  // The flight recorder retained the same three records.
  const std::vector<std::string> flight = observed.flight_records();
  ASSERT_EQ(flight.size(), 3u);
  EXPECT_EQ(flight[0], lines[0]);
  EXPECT_EQ(flight[2], lines[2]);
}

TEST(ServiceObservability, MetricsScrapeUnderLoadIsConsistent) {
  obs::set_metrics_enabled(true);
  obs::reset_metrics();
  parallel::ThreadPool pool(4);
  serve::ServiceOptions opts;
  opts.cache_entries = 4;
  opts.max_inflight = 8;
  opts.pool = &pool;
  serve::Service service(opts);

  serve::Json solve = serve::Json::object();
  solve.set("type", serve::Json::string("solve"));
  solve.set("scenario",
            serve::Json::string(scenario_text(test::simple_scenario())));
  const std::string request = solve.dump();

  std::atomic<bool> done{false};
  std::atomic<int> scrape_failures{0};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      const serve::Json resp =
          serve::parse_json(service.handle("{\"type\":\"metrics\"}"));
      if (resp.find("ok") == nullptr || !resp.find("ok")->as_bool()) {
        scrape_failures.fetch_add(1);
        continue;
      }
      const serve::Json* counters =
          resp.find("metrics")->find("counters");
      const serve::Json* hists =
          resp.find("metrics")->find("histograms");
      const serve::Json* requests = counters->find("serve.requests");
      const serve::Json* h = hists->find("serve.request_seconds");
      if (requests == nullptr || h == nullptr) continue;
      // Snapshot invariant: requests are counted on entry, latencies
      // observed on exit — a consistent snapshot can never show more
      // completed latencies than started requests.
      if (h->find("count")->as_number() > requests->as_number()) {
        scrape_failures.fetch_add(1);
      }
      const std::string prom = resp.find("prometheus")->as_string();
      if (prom.find("hipo_serve_requests_total") == std::string::npos) {
        scrape_failures.fetch_add(1);
      }
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int r = 0; r < 3; ++r) {
        const serve::Json resp = serve::parse_json(service.handle(request));
        EXPECT_TRUE(resp.find("ok")->as_bool());
      }
    });
  }
  for (auto& w : workers) w.join();
  done.store(true, std::memory_order_release);
  scraper.join();
  EXPECT_EQ(scrape_failures.load(), 0);

  // Derived percentiles are live and ordered.
  const serve::ServiceStats s = service.stats();
  EXPECT_GT(s.request_p50, 0.0);
  EXPECT_LE(s.request_p50, s.request_p90);
  EXPECT_LE(s.request_p90, s.request_p99);
  const serve::Json stats =
      serve::parse_json(service.handle("{\"type\":\"stats\"}"));
  EXPECT_GT(stats.find("request_seconds")->find("p99")->as_number(), 0.0);
  obs::set_metrics_enabled(false);
}

TEST(ServiceObservability, FlightRecorderCapturesErrorsForPostMortem) {
  parallel::ThreadPool pool(2);
  serve::ServiceOptions opts;
  opts.cache_entries = 2;
  opts.max_inflight = 2;
  opts.pool = &pool;
  opts.flight_entries = 8;
  serve::Service service(opts);

  // r1 fails, r2 succeeds; the flight request then explains both.
  serve::parse_json(service.handle("{\"type\":\"frobnicate\"}"));
  serve::parse_json(service.handle("{\"type\":\"stats\"}"));
  const serve::Json flight =
      serve::parse_json(service.handle("{\"type\":\"flight\"}"));
  ASSERT_TRUE(flight.find("ok")->as_bool());
  EXPECT_EQ(flight.find("capacity")->as_number(), 8.0);
  EXPECT_EQ(flight.find("recorded")->as_number(), 2.0);
  const auto& records = flight.find("records")->as_array();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].find("request_id")->as_string(), "r1");
  EXPECT_EQ(records[0].find("level")->as_string(), "error");
  EXPECT_EQ(records[0].find("error")->as_string(), "bad_request");
  EXPECT_EQ(records[1].find("request_id")->as_string(), "r2");
  EXPECT_EQ(records[1].find("type")->as_string(), "stats");

  // A service without a recorder still answers (empty).
  serve::ServiceOptions bare = opts;
  bare.flight_entries = 0;
  serve::Service no_flight(bare);
  const serve::Json empty =
      serve::parse_json(no_flight.handle("{\"type\":\"flight\"}"));
  EXPECT_TRUE(empty.find("ok")->as_bool());
  EXPECT_EQ(empty.find("records")->as_array().size(), 0u);
  EXPECT_EQ(empty.find("capacity")->as_number(), 0.0);
}

// --- socket server --------------------------------------------------------

TEST(ServeServer, LoopbackRoundTripAndCleanShutdown) {
  parallel::ThreadPool pool(2);
  serve::ServiceOptions sopts;
  sopts.cache_entries = 2;
  sopts.max_inflight = 2;
  sopts.pool = &pool;
  serve::Service service(sopts);
  serve::Server server(service, serve::ServerOptions{});
  ASSERT_NE(server.port(), 0);
  server.start();

  const model::Scenario scenario = test::simple_scenario();
  core::SolveOptions copts;
  copts.pool = &pool;
  const std::string reference =
      placement_bytes(core::solve(scenario, copts).placement);

  {
    serve::Client client(server.port());
    serve::Json req = serve::Json::object();
    req.set("type", serve::Json::string("solve"));
    req.set("scenario", serve::Json::string(scenario_text(scenario)));
    const serve::Json cold = serve::parse_json(client.call(req.dump()));
    ASSERT_TRUE(cold.find("ok")->as_bool());
    EXPECT_EQ(cold.find("placement_text")->as_string(), reference);
    // Same connection, second request: pipelined frames work.
    const serve::Json warm = serve::parse_json(client.call(req.dump()));
    EXPECT_EQ(warm.find("cache")->as_string(), "hit");
    EXPECT_EQ(warm.find("placement_text")->as_string(), reference);
  }
  {
    // A garbled frame gets an error response, not a dead socket.
    serve::Client client(server.port());
    const serve::Json bad = serve::parse_json(client.call("{{{{"));
    EXPECT_FALSE(bad.find("ok")->as_bool());
  }
  {
    serve::Client client(server.port());
    const serve::Json resp =
        serve::parse_json(client.call("{\"type\":\"shutdown\"}"));
    EXPECT_TRUE(resp.find("ok")->as_bool());
  }
  server.stop();  // must join cleanly after the served shutdown
  EXPECT_TRUE(service.shutdown_requested());
}

TEST(ServeServer, ConcurrentClientsOverLoopback) {
  parallel::ThreadPool pool(4);
  serve::ServiceOptions sopts;
  sopts.cache_entries = 2;
  sopts.max_inflight = 4;
  sopts.pool = &pool;
  serve::Service service(sopts);
  serve::Server server(service, serve::ServerOptions{});
  server.start();

  const std::string text = scenario_text(test::simple_scenario());
  serve::Json req = serve::Json::object();
  req.set("type", serve::Json::string("solve"));
  req.set("scenario", serve::Json::string(text));
  const std::string request = req.dump();

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  std::vector<std::string> first(4);
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&, i] {
      try {
        serve::Client client(server.port());
        const serve::Json resp =
            serve::parse_json(client.call(request));
        if (!resp.find("ok")->as_bool()) {
          failures.fetch_add(1);
          return;
        }
        first[i] = resp.find("placement_text")->as_string();
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (int i = 1; i < 4; ++i) EXPECT_EQ(first[i], first[0]);
  server.stop();
}

}  // namespace
}  // namespace hipo
