# Empty dependencies file for bench_fig14_dmin_dmax.
# This may be replaced when dependencies are built.
