file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_dmin_dmax.dir/bench_fig14_dmin_dmax.cpp.o"
  "CMakeFiles/bench_fig14_dmin_dmax.dir/bench_fig14_dmin_dmax.cpp.o.d"
  "bench_fig14_dmin_dmax"
  "bench_fig14_dmin_dmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_dmin_dmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
