# Empty compiler generated dependencies file for bench_field_experiment.
# This may be replaced when dependencies are built.
