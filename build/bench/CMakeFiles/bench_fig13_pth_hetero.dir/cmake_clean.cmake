file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_pth_hetero.dir/bench_fig13_pth_hetero.cpp.o"
  "CMakeFiles/bench_fig13_pth_hetero.dir/bench_fig13_pth_hetero.cpp.o.d"
  "bench_fig13_pth_hetero"
  "bench_fig13_pth_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_pth_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
