# Empty compiler generated dependencies file for bench_fig13_pth_hetero.
# This may be replaced when dependencies are built.
