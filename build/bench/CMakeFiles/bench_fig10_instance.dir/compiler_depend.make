# Empty compiler generated dependencies file for bench_fig10_instance.
# This may be replaced when dependencies are built.
