# Empty dependencies file for bench_heterogeneity.
# This may be replaced when dependencies are built.
