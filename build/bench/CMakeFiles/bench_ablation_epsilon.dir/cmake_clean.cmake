file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_epsilon.dir/bench_ablation_epsilon.cpp.o"
  "CMakeFiles/bench_ablation_epsilon.dir/bench_ablation_epsilon.cpp.o.d"
  "bench_ablation_epsilon"
  "bench_ablation_epsilon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_epsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
