# Empty compiler generated dependencies file for bench_ablation_epsilon.
# This may be replaced when dependencies are built.
