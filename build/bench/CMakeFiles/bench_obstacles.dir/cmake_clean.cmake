file(REMOVE_RECURSE
  "CMakeFiles/bench_obstacles.dir/bench_obstacles.cpp.o"
  "CMakeFiles/bench_obstacles.dir/bench_obstacles.cpp.o.d"
  "bench_obstacles"
  "bench_obstacles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_obstacles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
