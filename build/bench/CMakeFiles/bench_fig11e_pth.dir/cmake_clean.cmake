file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11e_pth.dir/bench_fig11e_pth.cpp.o"
  "CMakeFiles/bench_fig11e_pth.dir/bench_fig11e_pth.cpp.o.d"
  "bench_fig11e_pth"
  "bench_fig11e_pth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11e_pth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
