# Empty compiler generated dependencies file for bench_fig11e_pth.
# This may be replaced when dependencies are built.
