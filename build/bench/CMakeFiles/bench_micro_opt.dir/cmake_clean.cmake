file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_opt.dir/bench_micro_opt.cpp.o"
  "CMakeFiles/bench_micro_opt.dir/bench_micro_opt.cpp.o.d"
  "bench_micro_opt"
  "bench_micro_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
