# Empty compiler generated dependencies file for bench_micro_opt.
# This may be replaced when dependencies are built.
