# Empty dependencies file for bench_fig12_distributed.
# This may be replaced when dependencies are built.
