# Empty dependencies file for bench_fig11c_charge_angle.
# This may be replaced when dependencies are built.
