file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11c_charge_angle.dir/bench_fig11c_charge_angle.cpp.o"
  "CMakeFiles/bench_fig11c_charge_angle.dir/bench_fig11c_charge_angle.cpp.o.d"
  "bench_fig11c_charge_angle"
  "bench_fig11c_charge_angle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11c_charge_angle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
