file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11d_recv_angle.dir/bench_fig11d_recv_angle.cpp.o"
  "CMakeFiles/bench_fig11d_recv_angle.dir/bench_fig11d_recv_angle.cpp.o.d"
  "bench_fig11d_recv_angle"
  "bench_fig11d_recv_angle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11d_recv_angle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
