# Empty dependencies file for bench_fig11d_recv_angle.
# This may be replaced when dependencies are built.
