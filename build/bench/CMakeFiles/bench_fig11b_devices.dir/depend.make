# Empty dependencies file for bench_fig11b_devices.
# This may be replaced when dependencies are built.
