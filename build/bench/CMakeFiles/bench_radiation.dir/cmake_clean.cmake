file(REMOVE_RECURSE
  "CMakeFiles/bench_radiation.dir/bench_radiation.cpp.o"
  "CMakeFiles/bench_radiation.dir/bench_radiation.cpp.o.d"
  "bench_radiation"
  "bench_radiation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_radiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
