# Empty dependencies file for bench_radiation.
# This may be replaced when dependencies are built.
