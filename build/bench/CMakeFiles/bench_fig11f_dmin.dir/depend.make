# Empty dependencies file for bench_fig11f_dmin.
# This may be replaced when dependencies are built.
