file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11f_dmin.dir/bench_fig11f_dmin.cpp.o"
  "CMakeFiles/bench_fig11f_dmin.dir/bench_fig11f_dmin.cpp.o.d"
  "bench_fig11f_dmin"
  "bench_fig11f_dmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11f_dmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
