# Empty compiler generated dependencies file for hipo_bench_harness.
# This may be replaced when dependencies are built.
