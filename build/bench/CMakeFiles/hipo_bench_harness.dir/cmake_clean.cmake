file(REMOVE_RECURSE
  "CMakeFiles/hipo_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/hipo_bench_harness.dir/harness.cpp.o.d"
  "libhipo_bench_harness.a"
  "libhipo_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipo_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
