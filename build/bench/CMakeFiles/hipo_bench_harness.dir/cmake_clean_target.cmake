file(REMOVE_RECURSE
  "libhipo_bench_harness.a"
)
