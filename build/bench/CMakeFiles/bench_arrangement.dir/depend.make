# Empty dependencies file for bench_arrangement.
# This may be replaced when dependencies are built.
