file(REMOVE_RECURSE
  "CMakeFiles/bench_arrangement.dir/bench_arrangement.cpp.o"
  "CMakeFiles/bench_arrangement.dir/bench_arrangement.cpp.o.d"
  "bench_arrangement"
  "bench_arrangement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_arrangement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
