# Empty compiler generated dependencies file for bench_micro_pdcs.
# This may be replaced when dependencies are built.
