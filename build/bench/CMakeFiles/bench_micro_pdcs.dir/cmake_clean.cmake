file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_pdcs.dir/bench_micro_pdcs.cpp.o"
  "CMakeFiles/bench_micro_pdcs.dir/bench_micro_pdcs.cpp.o.d"
  "bench_micro_pdcs"
  "bench_micro_pdcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_pdcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
