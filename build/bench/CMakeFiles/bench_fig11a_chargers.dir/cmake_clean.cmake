file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11a_chargers.dir/bench_fig11a_chargers.cpp.o"
  "CMakeFiles/bench_fig11a_chargers.dir/bench_fig11a_chargers.cpp.o.d"
  "bench_fig11a_chargers"
  "bench_fig11a_chargers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11a_chargers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
