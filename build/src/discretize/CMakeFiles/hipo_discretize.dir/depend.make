# Empty dependencies file for hipo_discretize.
# This may be replaced when dependencies are built.
