file(REMOVE_RECURSE
  "libhipo_discretize.a"
)
