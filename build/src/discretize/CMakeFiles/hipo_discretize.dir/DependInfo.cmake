
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/discretize/feasible_region.cpp" "src/discretize/CMakeFiles/hipo_discretize.dir/feasible_region.cpp.o" "gcc" "src/discretize/CMakeFiles/hipo_discretize.dir/feasible_region.cpp.o.d"
  "/root/repo/src/discretize/shadow_map.cpp" "src/discretize/CMakeFiles/hipo_discretize.dir/shadow_map.cpp.o" "gcc" "src/discretize/CMakeFiles/hipo_discretize.dir/shadow_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/hipo_model.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/hipo_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hipo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
