file(REMOVE_RECURSE
  "CMakeFiles/hipo_discretize.dir/feasible_region.cpp.o"
  "CMakeFiles/hipo_discretize.dir/feasible_region.cpp.o.d"
  "CMakeFiles/hipo_discretize.dir/shadow_map.cpp.o"
  "CMakeFiles/hipo_discretize.dir/shadow_map.cpp.o.d"
  "libhipo_discretize.a"
  "libhipo_discretize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipo_discretize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
