# Empty dependencies file for hipo_core.
# This may be replaced when dependencies are built.
