file(REMOVE_RECURSE
  "CMakeFiles/hipo_core.dir/solver.cpp.o"
  "CMakeFiles/hipo_core.dir/solver.cpp.o.d"
  "libhipo_core.a"
  "libhipo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
