file(REMOVE_RECURSE
  "libhipo_core.a"
)
