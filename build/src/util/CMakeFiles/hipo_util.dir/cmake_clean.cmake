file(REMOVE_RECURSE
  "CMakeFiles/hipo_util.dir/cli.cpp.o"
  "CMakeFiles/hipo_util.dir/cli.cpp.o.d"
  "CMakeFiles/hipo_util.dir/rng.cpp.o"
  "CMakeFiles/hipo_util.dir/rng.cpp.o.d"
  "CMakeFiles/hipo_util.dir/stats.cpp.o"
  "CMakeFiles/hipo_util.dir/stats.cpp.o.d"
  "CMakeFiles/hipo_util.dir/table.cpp.o"
  "CMakeFiles/hipo_util.dir/table.cpp.o.d"
  "libhipo_util.a"
  "libhipo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
