file(REMOVE_RECURSE
  "libhipo_util.a"
)
