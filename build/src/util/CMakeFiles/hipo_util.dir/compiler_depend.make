# Empty compiler generated dependencies file for hipo_util.
# This may be replaced when dependencies are built.
