# Empty compiler generated dependencies file for hipo_model.
# This may be replaced when dependencies are built.
