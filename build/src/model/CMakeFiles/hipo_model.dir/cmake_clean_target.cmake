file(REMOVE_RECURSE
  "libhipo_model.a"
)
