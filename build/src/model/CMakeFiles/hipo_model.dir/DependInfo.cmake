
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/io.cpp" "src/model/CMakeFiles/hipo_model.dir/io.cpp.o" "gcc" "src/model/CMakeFiles/hipo_model.dir/io.cpp.o.d"
  "/root/repo/src/model/piecewise.cpp" "src/model/CMakeFiles/hipo_model.dir/piecewise.cpp.o" "gcc" "src/model/CMakeFiles/hipo_model.dir/piecewise.cpp.o.d"
  "/root/repo/src/model/scenario.cpp" "src/model/CMakeFiles/hipo_model.dir/scenario.cpp.o" "gcc" "src/model/CMakeFiles/hipo_model.dir/scenario.cpp.o.d"
  "/root/repo/src/model/scenario_gen.cpp" "src/model/CMakeFiles/hipo_model.dir/scenario_gen.cpp.o" "gcc" "src/model/CMakeFiles/hipo_model.dir/scenario_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/hipo_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hipo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
