file(REMOVE_RECURSE
  "CMakeFiles/hipo_model.dir/io.cpp.o"
  "CMakeFiles/hipo_model.dir/io.cpp.o.d"
  "CMakeFiles/hipo_model.dir/piecewise.cpp.o"
  "CMakeFiles/hipo_model.dir/piecewise.cpp.o.d"
  "CMakeFiles/hipo_model.dir/scenario.cpp.o"
  "CMakeFiles/hipo_model.dir/scenario.cpp.o.d"
  "CMakeFiles/hipo_model.dir/scenario_gen.cpp.o"
  "CMakeFiles/hipo_model.dir/scenario_gen.cpp.o.d"
  "libhipo_model.a"
  "libhipo_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipo_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
