file(REMOVE_RECURSE
  "CMakeFiles/hipo_baselines.dir/baselines.cpp.o"
  "CMakeFiles/hipo_baselines.dir/baselines.cpp.o.d"
  "libhipo_baselines.a"
  "libhipo_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipo_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
