# Empty compiler generated dependencies file for hipo_baselines.
# This may be replaced when dependencies are built.
