file(REMOVE_RECURSE
  "libhipo_baselines.a"
)
