# Empty compiler generated dependencies file for hipo_ext.
# This may be replaced when dependencies are built.
