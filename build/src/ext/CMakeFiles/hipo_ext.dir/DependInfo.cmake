
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ext/coverage_analysis.cpp" "src/ext/CMakeFiles/hipo_ext.dir/coverage_analysis.cpp.o" "gcc" "src/ext/CMakeFiles/hipo_ext.dir/coverage_analysis.cpp.o.d"
  "/root/repo/src/ext/deploy_cost.cpp" "src/ext/CMakeFiles/hipo_ext.dir/deploy_cost.cpp.o" "gcc" "src/ext/CMakeFiles/hipo_ext.dir/deploy_cost.cpp.o.d"
  "/root/repo/src/ext/fairness.cpp" "src/ext/CMakeFiles/hipo_ext.dir/fairness.cpp.o" "gcc" "src/ext/CMakeFiles/hipo_ext.dir/fairness.cpp.o.d"
  "/root/repo/src/ext/hungarian.cpp" "src/ext/CMakeFiles/hipo_ext.dir/hungarian.cpp.o" "gcc" "src/ext/CMakeFiles/hipo_ext.dir/hungarian.cpp.o.d"
  "/root/repo/src/ext/matching.cpp" "src/ext/CMakeFiles/hipo_ext.dir/matching.cpp.o" "gcc" "src/ext/CMakeFiles/hipo_ext.dir/matching.cpp.o.d"
  "/root/repo/src/ext/radiation.cpp" "src/ext/CMakeFiles/hipo_ext.dir/radiation.cpp.o" "gcc" "src/ext/CMakeFiles/hipo_ext.dir/radiation.cpp.o.d"
  "/root/repo/src/ext/redeploy.cpp" "src/ext/CMakeFiles/hipo_ext.dir/redeploy.cpp.o" "gcc" "src/ext/CMakeFiles/hipo_ext.dir/redeploy.cpp.o.d"
  "/root/repo/src/ext/resilience.cpp" "src/ext/CMakeFiles/hipo_ext.dir/resilience.cpp.o" "gcc" "src/ext/CMakeFiles/hipo_ext.dir/resilience.cpp.o.d"
  "/root/repo/src/ext/tour.cpp" "src/ext/CMakeFiles/hipo_ext.dir/tour.cpp.o" "gcc" "src/ext/CMakeFiles/hipo_ext.dir/tour.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opt/CMakeFiles/hipo_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/pdcs/CMakeFiles/hipo_pdcs.dir/DependInfo.cmake"
  "/root/repo/build/src/discretize/CMakeFiles/hipo_discretize.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/hipo_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hipo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/hipo_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/hipo_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/hipo_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
