file(REMOVE_RECURSE
  "libhipo_ext.a"
)
