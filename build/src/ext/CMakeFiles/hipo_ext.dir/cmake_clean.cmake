file(REMOVE_RECURSE
  "CMakeFiles/hipo_ext.dir/coverage_analysis.cpp.o"
  "CMakeFiles/hipo_ext.dir/coverage_analysis.cpp.o.d"
  "CMakeFiles/hipo_ext.dir/deploy_cost.cpp.o"
  "CMakeFiles/hipo_ext.dir/deploy_cost.cpp.o.d"
  "CMakeFiles/hipo_ext.dir/fairness.cpp.o"
  "CMakeFiles/hipo_ext.dir/fairness.cpp.o.d"
  "CMakeFiles/hipo_ext.dir/hungarian.cpp.o"
  "CMakeFiles/hipo_ext.dir/hungarian.cpp.o.d"
  "CMakeFiles/hipo_ext.dir/matching.cpp.o"
  "CMakeFiles/hipo_ext.dir/matching.cpp.o.d"
  "CMakeFiles/hipo_ext.dir/radiation.cpp.o"
  "CMakeFiles/hipo_ext.dir/radiation.cpp.o.d"
  "CMakeFiles/hipo_ext.dir/redeploy.cpp.o"
  "CMakeFiles/hipo_ext.dir/redeploy.cpp.o.d"
  "CMakeFiles/hipo_ext.dir/resilience.cpp.o"
  "CMakeFiles/hipo_ext.dir/resilience.cpp.o.d"
  "CMakeFiles/hipo_ext.dir/tour.cpp.o"
  "CMakeFiles/hipo_ext.dir/tour.cpp.o.d"
  "libhipo_ext.a"
  "libhipo_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipo_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
