# Empty dependencies file for hipo_pdcs.
# This may be replaced when dependencies are built.
