file(REMOVE_RECURSE
  "libhipo_pdcs.a"
)
