
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdcs/arrangement.cpp" "src/pdcs/CMakeFiles/hipo_pdcs.dir/arrangement.cpp.o" "gcc" "src/pdcs/CMakeFiles/hipo_pdcs.dir/arrangement.cpp.o.d"
  "/root/repo/src/pdcs/candidate.cpp" "src/pdcs/CMakeFiles/hipo_pdcs.dir/candidate.cpp.o" "gcc" "src/pdcs/CMakeFiles/hipo_pdcs.dir/candidate.cpp.o.d"
  "/root/repo/src/pdcs/candidate_gen.cpp" "src/pdcs/CMakeFiles/hipo_pdcs.dir/candidate_gen.cpp.o" "gcc" "src/pdcs/CMakeFiles/hipo_pdcs.dir/candidate_gen.cpp.o.d"
  "/root/repo/src/pdcs/extract.cpp" "src/pdcs/CMakeFiles/hipo_pdcs.dir/extract.cpp.o" "gcc" "src/pdcs/CMakeFiles/hipo_pdcs.dir/extract.cpp.o.d"
  "/root/repo/src/pdcs/point_case.cpp" "src/pdcs/CMakeFiles/hipo_pdcs.dir/point_case.cpp.o" "gcc" "src/pdcs/CMakeFiles/hipo_pdcs.dir/point_case.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/hipo_model.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/hipo_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/hipo_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/hipo_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hipo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
