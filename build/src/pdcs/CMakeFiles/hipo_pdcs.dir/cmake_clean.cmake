file(REMOVE_RECURSE
  "CMakeFiles/hipo_pdcs.dir/arrangement.cpp.o"
  "CMakeFiles/hipo_pdcs.dir/arrangement.cpp.o.d"
  "CMakeFiles/hipo_pdcs.dir/candidate.cpp.o"
  "CMakeFiles/hipo_pdcs.dir/candidate.cpp.o.d"
  "CMakeFiles/hipo_pdcs.dir/candidate_gen.cpp.o"
  "CMakeFiles/hipo_pdcs.dir/candidate_gen.cpp.o.d"
  "CMakeFiles/hipo_pdcs.dir/extract.cpp.o"
  "CMakeFiles/hipo_pdcs.dir/extract.cpp.o.d"
  "CMakeFiles/hipo_pdcs.dir/point_case.cpp.o"
  "CMakeFiles/hipo_pdcs.dir/point_case.cpp.o.d"
  "libhipo_pdcs.a"
  "libhipo_pdcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipo_pdcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
