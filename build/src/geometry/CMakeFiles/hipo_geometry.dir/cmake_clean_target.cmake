file(REMOVE_RECURSE
  "libhipo_geometry.a"
)
