
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/angles.cpp" "src/geometry/CMakeFiles/hipo_geometry.dir/angles.cpp.o" "gcc" "src/geometry/CMakeFiles/hipo_geometry.dir/angles.cpp.o.d"
  "/root/repo/src/geometry/circle.cpp" "src/geometry/CMakeFiles/hipo_geometry.dir/circle.cpp.o" "gcc" "src/geometry/CMakeFiles/hipo_geometry.dir/circle.cpp.o.d"
  "/root/repo/src/geometry/polygon.cpp" "src/geometry/CMakeFiles/hipo_geometry.dir/polygon.cpp.o" "gcc" "src/geometry/CMakeFiles/hipo_geometry.dir/polygon.cpp.o.d"
  "/root/repo/src/geometry/sector_ring.cpp" "src/geometry/CMakeFiles/hipo_geometry.dir/sector_ring.cpp.o" "gcc" "src/geometry/CMakeFiles/hipo_geometry.dir/sector_ring.cpp.o.d"
  "/root/repo/src/geometry/segment.cpp" "src/geometry/CMakeFiles/hipo_geometry.dir/segment.cpp.o" "gcc" "src/geometry/CMakeFiles/hipo_geometry.dir/segment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hipo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
