# Empty dependencies file for hipo_geometry.
# This may be replaced when dependencies are built.
