file(REMOVE_RECURSE
  "CMakeFiles/hipo_geometry.dir/angles.cpp.o"
  "CMakeFiles/hipo_geometry.dir/angles.cpp.o.d"
  "CMakeFiles/hipo_geometry.dir/circle.cpp.o"
  "CMakeFiles/hipo_geometry.dir/circle.cpp.o.d"
  "CMakeFiles/hipo_geometry.dir/polygon.cpp.o"
  "CMakeFiles/hipo_geometry.dir/polygon.cpp.o.d"
  "CMakeFiles/hipo_geometry.dir/sector_ring.cpp.o"
  "CMakeFiles/hipo_geometry.dir/sector_ring.cpp.o.d"
  "CMakeFiles/hipo_geometry.dir/segment.cpp.o"
  "CMakeFiles/hipo_geometry.dir/segment.cpp.o.d"
  "libhipo_geometry.a"
  "libhipo_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipo_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
