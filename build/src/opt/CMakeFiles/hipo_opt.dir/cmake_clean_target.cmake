file(REMOVE_RECURSE
  "libhipo_opt.a"
)
