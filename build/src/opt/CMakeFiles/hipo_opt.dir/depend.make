# Empty dependencies file for hipo_opt.
# This may be replaced when dependencies are built.
