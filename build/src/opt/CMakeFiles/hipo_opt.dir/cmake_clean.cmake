file(REMOVE_RECURSE
  "CMakeFiles/hipo_opt.dir/exhaustive.cpp.o"
  "CMakeFiles/hipo_opt.dir/exhaustive.cpp.o.d"
  "CMakeFiles/hipo_opt.dir/greedy.cpp.o"
  "CMakeFiles/hipo_opt.dir/greedy.cpp.o.d"
  "CMakeFiles/hipo_opt.dir/local_search.cpp.o"
  "CMakeFiles/hipo_opt.dir/local_search.cpp.o.d"
  "CMakeFiles/hipo_opt.dir/matroid.cpp.o"
  "CMakeFiles/hipo_opt.dir/matroid.cpp.o.d"
  "CMakeFiles/hipo_opt.dir/objective.cpp.o"
  "CMakeFiles/hipo_opt.dir/objective.cpp.o.d"
  "libhipo_opt.a"
  "libhipo_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipo_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
