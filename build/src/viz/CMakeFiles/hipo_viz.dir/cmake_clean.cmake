file(REMOVE_RECURSE
  "CMakeFiles/hipo_viz.dir/field_export.cpp.o"
  "CMakeFiles/hipo_viz.dir/field_export.cpp.o.d"
  "CMakeFiles/hipo_viz.dir/svg.cpp.o"
  "CMakeFiles/hipo_viz.dir/svg.cpp.o.d"
  "libhipo_viz.a"
  "libhipo_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipo_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
