# Empty dependencies file for hipo_viz.
# This may be replaced when dependencies are built.
