file(REMOVE_RECURSE
  "libhipo_viz.a"
)
