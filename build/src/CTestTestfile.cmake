# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("geometry")
subdirs("spatial")
subdirs("model")
subdirs("discretize")
subdirs("parallel")
subdirs("pdcs")
subdirs("opt")
subdirs("baselines")
subdirs("ext")
subdirs("viz")
subdirs("core")
