file(REMOVE_RECURSE
  "CMakeFiles/hipo_parallel.dir/lpt.cpp.o"
  "CMakeFiles/hipo_parallel.dir/lpt.cpp.o.d"
  "CMakeFiles/hipo_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/hipo_parallel.dir/thread_pool.cpp.o.d"
  "libhipo_parallel.a"
  "libhipo_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipo_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
