# Empty compiler generated dependencies file for hipo_parallel.
# This may be replaced when dependencies are built.
