file(REMOVE_RECURSE
  "libhipo_parallel.a"
)
