# Empty dependencies file for hipo_spatial.
# This may be replaced when dependencies are built.
