file(REMOVE_RECURSE
  "libhipo_spatial.a"
)
