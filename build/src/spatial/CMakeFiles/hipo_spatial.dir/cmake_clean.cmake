file(REMOVE_RECURSE
  "CMakeFiles/hipo_spatial.dir/grid_index.cpp.o"
  "CMakeFiles/hipo_spatial.dir/grid_index.cpp.o.d"
  "libhipo_spatial.a"
  "libhipo_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipo_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
