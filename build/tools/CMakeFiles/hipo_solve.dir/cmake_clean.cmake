file(REMOVE_RECURSE
  "CMakeFiles/hipo_solve.dir/hipo_solve.cpp.o"
  "CMakeFiles/hipo_solve.dir/hipo_solve.cpp.o.d"
  "hipo_solve"
  "hipo_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipo_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
