# Empty dependencies file for hipo_solve.
# This may be replaced when dependencies are built.
