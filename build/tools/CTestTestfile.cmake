# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_hipo_solve_field "/root/repo/build/tools/hipo_solve" "--demo" "field" "--svg" "field_smoke.svg")
set_tests_properties(smoke_hipo_solve_field PROPERTIES  LABELS "smoke" TIMEOUT "120" WORKING_DIRECTORY "/root/repo/build/tools" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(smoke_hipo_solve_file "/root/repo/build/tools/hipo_solve" "--scenario" "/root/repo/data/office.hipo" "--algorithm" "gppdcs" "--out" "office_smoke.hipo")
set_tests_properties(smoke_hipo_solve_file PROPERTIES  LABELS "smoke" TIMEOUT "120" WORKING_DIRECTORY "/root/repo/build/tools" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
