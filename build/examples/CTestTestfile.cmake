# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(smoke_quickstart PROPERTIES  LABELS "smoke" TIMEOUT "120" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_warehouse_deployment "/root/repo/build/examples/warehouse_deployment")
set_tests_properties(smoke_warehouse_deployment PROPERTIES  LABELS "smoke" TIMEOUT "120" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_museum_redeployment "/root/repo/build/examples/museum_redeployment")
set_tests_properties(smoke_museum_redeployment PROPERTIES  LABELS "smoke" TIMEOUT "120" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_fairness_balancing "/root/repo/build/examples/fairness_balancing")
set_tests_properties(smoke_fairness_balancing PROPERTIES  LABELS "smoke" TIMEOUT "120" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_budgeted_deployment "/root/repo/build/examples/budgeted_deployment")
set_tests_properties(smoke_budgeted_deployment PROPERTIES  LABELS "smoke" TIMEOUT "120" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_hospital_safe_charging "/root/repo/build/examples/hospital_safe_charging")
set_tests_properties(smoke_hospital_safe_charging PROPERTIES  LABELS "smoke" TIMEOUT "120" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
