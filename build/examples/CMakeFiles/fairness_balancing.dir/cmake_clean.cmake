file(REMOVE_RECURSE
  "CMakeFiles/fairness_balancing.dir/fairness_balancing.cpp.o"
  "CMakeFiles/fairness_balancing.dir/fairness_balancing.cpp.o.d"
  "fairness_balancing"
  "fairness_balancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
