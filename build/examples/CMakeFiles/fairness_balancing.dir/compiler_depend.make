# Empty compiler generated dependencies file for fairness_balancing.
# This may be replaced when dependencies are built.
