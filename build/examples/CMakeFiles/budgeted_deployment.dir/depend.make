# Empty dependencies file for budgeted_deployment.
# This may be replaced when dependencies are built.
