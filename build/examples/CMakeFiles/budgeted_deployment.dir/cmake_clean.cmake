file(REMOVE_RECURSE
  "CMakeFiles/budgeted_deployment.dir/budgeted_deployment.cpp.o"
  "CMakeFiles/budgeted_deployment.dir/budgeted_deployment.cpp.o.d"
  "budgeted_deployment"
  "budgeted_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/budgeted_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
