# Empty compiler generated dependencies file for warehouse_deployment.
# This may be replaced when dependencies are built.
