file(REMOVE_RECURSE
  "CMakeFiles/warehouse_deployment.dir/warehouse_deployment.cpp.o"
  "CMakeFiles/warehouse_deployment.dir/warehouse_deployment.cpp.o.d"
  "warehouse_deployment"
  "warehouse_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
