file(REMOVE_RECURSE
  "CMakeFiles/museum_redeployment.dir/museum_redeployment.cpp.o"
  "CMakeFiles/museum_redeployment.dir/museum_redeployment.cpp.o.d"
  "museum_redeployment"
  "museum_redeployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/museum_redeployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
