# Empty dependencies file for museum_redeployment.
# This may be replaced when dependencies are built.
