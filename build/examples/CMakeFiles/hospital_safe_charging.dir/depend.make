# Empty dependencies file for hospital_safe_charging.
# This may be replaced when dependencies are built.
