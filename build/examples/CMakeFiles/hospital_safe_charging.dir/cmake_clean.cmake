file(REMOVE_RECURSE
  "CMakeFiles/hospital_safe_charging.dir/hospital_safe_charging.cpp.o"
  "CMakeFiles/hospital_safe_charging.dir/hospital_safe_charging.cpp.o.d"
  "hospital_safe_charging"
  "hospital_safe_charging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hospital_safe_charging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
