file(REMOVE_RECURSE
  "CMakeFiles/test_lemma44.dir/test_lemma44.cpp.o"
  "CMakeFiles/test_lemma44.dir/test_lemma44.cpp.o.d"
  "test_lemma44"
  "test_lemma44.pdb"
  "test_lemma44[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lemma44.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
