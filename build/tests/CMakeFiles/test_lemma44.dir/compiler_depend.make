# Empty compiler generated dependencies file for test_lemma44.
# This may be replaced when dependencies are built.
