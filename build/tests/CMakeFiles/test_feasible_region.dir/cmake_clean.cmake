file(REMOVE_RECURSE
  "CMakeFiles/test_feasible_region.dir/test_feasible_region.cpp.o"
  "CMakeFiles/test_feasible_region.dir/test_feasible_region.cpp.o.d"
  "test_feasible_region"
  "test_feasible_region.pdb"
  "test_feasible_region[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feasible_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
