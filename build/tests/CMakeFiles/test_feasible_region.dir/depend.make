# Empty dependencies file for test_feasible_region.
# This may be replaced when dependencies are built.
