file(REMOVE_RECURSE
  "CMakeFiles/test_field_export.dir/test_field_export.cpp.o"
  "CMakeFiles/test_field_export.dir/test_field_export.cpp.o.d"
  "test_field_export"
  "test_field_export.pdb"
  "test_field_export[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_field_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
