# Empty dependencies file for test_field_export.
# This may be replaced when dependencies are built.
