file(REMOVE_RECURSE
  "CMakeFiles/test_redeploy.dir/test_redeploy.cpp.o"
  "CMakeFiles/test_redeploy.dir/test_redeploy.cpp.o.d"
  "test_redeploy"
  "test_redeploy.pdb"
  "test_redeploy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_redeploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
