# Empty dependencies file for test_redeploy.
# This may be replaced when dependencies are built.
