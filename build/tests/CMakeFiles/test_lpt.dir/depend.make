# Empty dependencies file for test_lpt.
# This may be replaced when dependencies are built.
