file(REMOVE_RECURSE
  "CMakeFiles/test_lpt.dir/test_lpt.cpp.o"
  "CMakeFiles/test_lpt.dir/test_lpt.cpp.o.d"
  "test_lpt"
  "test_lpt.pdb"
  "test_lpt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
