# Empty dependencies file for test_scenario_gen.
# This may be replaced when dependencies are built.
