file(REMOVE_RECURSE
  "CMakeFiles/test_scenario_gen.dir/test_scenario_gen.cpp.o"
  "CMakeFiles/test_scenario_gen.dir/test_scenario_gen.cpp.o.d"
  "test_scenario_gen"
  "test_scenario_gen.pdb"
  "test_scenario_gen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scenario_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
