file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_sweeps.dir/test_pipeline_sweeps.cpp.o"
  "CMakeFiles/test_pipeline_sweeps.dir/test_pipeline_sweeps.cpp.o.d"
  "test_pipeline_sweeps"
  "test_pipeline_sweeps.pdb"
  "test_pipeline_sweeps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
