# Empty dependencies file for test_circle.
# This may be replaced when dependencies are built.
