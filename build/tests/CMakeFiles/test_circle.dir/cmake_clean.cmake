file(REMOVE_RECURSE
  "CMakeFiles/test_circle.dir/test_circle.cpp.o"
  "CMakeFiles/test_circle.dir/test_circle.cpp.o.d"
  "test_circle"
  "test_circle.pdb"
  "test_circle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_circle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
