file(REMOVE_RECURSE
  "CMakeFiles/test_arrangement.dir/test_arrangement.cpp.o"
  "CMakeFiles/test_arrangement.dir/test_arrangement.cpp.o.d"
  "test_arrangement"
  "test_arrangement.pdb"
  "test_arrangement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arrangement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
