file(REMOVE_RECURSE
  "CMakeFiles/test_matroid.dir/test_matroid.cpp.o"
  "CMakeFiles/test_matroid.dir/test_matroid.cpp.o.d"
  "test_matroid"
  "test_matroid.pdb"
  "test_matroid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matroid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
