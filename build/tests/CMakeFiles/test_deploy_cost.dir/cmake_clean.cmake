file(REMOVE_RECURSE
  "CMakeFiles/test_deploy_cost.dir/test_deploy_cost.cpp.o"
  "CMakeFiles/test_deploy_cost.dir/test_deploy_cost.cpp.o.d"
  "test_deploy_cost"
  "test_deploy_cost.pdb"
  "test_deploy_cost[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deploy_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
