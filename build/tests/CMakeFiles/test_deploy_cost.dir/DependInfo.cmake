
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_deploy_cost.cpp" "tests/CMakeFiles/test_deploy_cost.dir/test_deploy_cost.cpp.o" "gcc" "tests/CMakeFiles/test_deploy_cost.dir/test_deploy_cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hipo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/hipo_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/hipo_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/ext/CMakeFiles/hipo_ext.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/hipo_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/pdcs/CMakeFiles/hipo_pdcs.dir/DependInfo.cmake"
  "/root/repo/build/src/discretize/CMakeFiles/hipo_discretize.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/hipo_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/hipo_model.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/hipo_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/hipo_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hipo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
