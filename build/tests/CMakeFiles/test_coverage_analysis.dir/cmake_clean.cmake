file(REMOVE_RECURSE
  "CMakeFiles/test_coverage_analysis.dir/test_coverage_analysis.cpp.o"
  "CMakeFiles/test_coverage_analysis.dir/test_coverage_analysis.cpp.o.d"
  "test_coverage_analysis"
  "test_coverage_analysis.pdb"
  "test_coverage_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coverage_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
