# Empty compiler generated dependencies file for test_polygon.
# This may be replaced when dependencies are built.
