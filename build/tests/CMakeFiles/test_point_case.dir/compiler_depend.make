# Empty compiler generated dependencies file for test_point_case.
# This may be replaced when dependencies are built.
