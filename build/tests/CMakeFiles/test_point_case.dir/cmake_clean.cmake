file(REMOVE_RECURSE
  "CMakeFiles/test_point_case.dir/test_point_case.cpp.o"
  "CMakeFiles/test_point_case.dir/test_point_case.cpp.o.d"
  "test_point_case"
  "test_point_case.pdb"
  "test_point_case[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_point_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
