file(REMOVE_RECURSE
  "CMakeFiles/test_geometry_robustness.dir/test_geometry_robustness.cpp.o"
  "CMakeFiles/test_geometry_robustness.dir/test_geometry_robustness.cpp.o.d"
  "test_geometry_robustness"
  "test_geometry_robustness.pdb"
  "test_geometry_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geometry_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
