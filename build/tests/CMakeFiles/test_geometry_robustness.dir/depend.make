# Empty dependencies file for test_geometry_robustness.
# This may be replaced when dependencies are built.
