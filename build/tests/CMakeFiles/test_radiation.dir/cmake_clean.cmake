file(REMOVE_RECURSE
  "CMakeFiles/test_radiation.dir/test_radiation.cpp.o"
  "CMakeFiles/test_radiation.dir/test_radiation.cpp.o.d"
  "test_radiation"
  "test_radiation.pdb"
  "test_radiation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
