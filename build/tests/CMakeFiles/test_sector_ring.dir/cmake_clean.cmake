file(REMOVE_RECURSE
  "CMakeFiles/test_sector_ring.dir/test_sector_ring.cpp.o"
  "CMakeFiles/test_sector_ring.dir/test_sector_ring.cpp.o.d"
  "test_sector_ring"
  "test_sector_ring.pdb"
  "test_sector_ring[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sector_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
