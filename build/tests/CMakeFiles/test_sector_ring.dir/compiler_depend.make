# Empty compiler generated dependencies file for test_sector_ring.
# This may be replaced when dependencies are built.
