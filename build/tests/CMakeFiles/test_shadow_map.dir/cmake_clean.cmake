file(REMOVE_RECURSE
  "CMakeFiles/test_shadow_map.dir/test_shadow_map.cpp.o"
  "CMakeFiles/test_shadow_map.dir/test_shadow_map.cpp.o.d"
  "test_shadow_map"
  "test_shadow_map.pdb"
  "test_shadow_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shadow_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
