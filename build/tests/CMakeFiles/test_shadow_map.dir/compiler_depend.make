# Empty compiler generated dependencies file for test_shadow_map.
# This may be replaced when dependencies are built.
