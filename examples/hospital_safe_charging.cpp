// Radiation-safe charging in a hospital ward: medical telemetry sensors
// need wireless power, but electromagnetic radiation anywhere patients can
// be must stay below a safety threshold Rt (the safe-charging constraint of
// the paper's related work [16]–[23]). Sweeps Rt and reports the
// utility/safety frontier, then renders the chosen placement.
//
//   ./hospital_safe_charging [--seed N] [--rt X]
#include <iostream>

#include "src/hipo.hpp"

int main(int argc, char** argv) {
  using namespace hipo;
  Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_or("seed", 21));
  const double chosen_rt = cli.get_or("rt", 0.08);
  cli.finish();

  // Ward: 30 m × 18 m, two rows of patient bays (walls block power),
  // telemetry sensors near the beds.
  model::Scenario::Config cfg;
  cfg.charger_types = {
      {geom::kPi / 3.0, 2.0, 8.0},
      {geom::kPi / 2.0, 1.0, 5.0},
  };
  cfg.device_types = {{geom::kPi}};
  cfg.pair_params = {{110.0, 44.0}, {100.0, 40.0}};
  cfg.charger_counts = {3, 4};
  cfg.region.lo = {0.0, 0.0};
  cfg.region.hi = {30.0, 18.0};
  for (int bay = 0; bay < 3; ++bay) {
    const double x = 5.0 + 8.0 * bay;
    cfg.obstacles.push_back(geom::make_rect({x, 6.0}, {x + 0.6, 12.0}));
  }
  Rng rng(seed);
  for (int i = 0; i < 14; ++i) {
    model::Device d;
    d.type = 0;
    d.p_th = 0.05;
    d.orientation = rng.angle();
    do {
      d.pos = {rng.uniform(1.0, 29.0), rng.uniform(1.0, 17.0)};
      bool inside = false;
      for (const auto& h : cfg.obstacles) inside = inside || h.contains(d.pos);
      if (!inside) break;
    } while (true);
    cfg.devices.push_back(d);
  }
  const model::Scenario scenario(std::move(cfg));

  const auto extraction = pdcs::extract_all(scenario);
  auto model = ext::RadiationModel::from_scenario(scenario);
  model.grid_nx = 30;
  model.grid_ny = 18;

  const auto unconstrained = core::solve(scenario);
  std::cout << "Ward: " << scenario.num_devices() << " sensors, "
            << scenario.num_chargers() << " charger budget\n";
  std::cout << "Unconstrained: utility "
            << format_double(unconstrained.utility, 4) << ", peak EMR "
            << format_double(
                   ext::max_radiation(scenario, unconstrained.placement,
                                      model),
                   4)
            << "\n\n";

  // Note: a sensor can only be charged if its own location receives at
  // least P_th of power, so thresholds below ~P_th·(a_EMR/a_pair) admit no
  // charging at all — the frontier starts just above that physical floor.
  Table frontier({"Rt", "utility", "peak EMR", "chargers"});
  for (double rt : {0.05, 0.06, 0.08, 0.10, 0.15, 0.25}) {
    const auto safe =
        ext::select_radiation_safe(scenario, extraction.candidates, model, rt);
    frontier.row()
        .add(rt, 3)
        .add(safe.utility, 4)
        .add(safe.peak_radiation, 4)
        .add(safe.placement.size());
  }
  frontier.print(std::cout);

  const auto chosen = ext::select_radiation_safe(
      scenario, extraction.candidates, model, chosen_rt);
  viz::write_svg_file("hospital_ward.svg", scenario, chosen.placement);
  std::cout << "\nchose Rt = " << format_double(chosen_rt, 3)
            << ": utility " << format_double(chosen.utility, 4)
            << ", rendering written to hospital_ward.svg\n";
  return 0;
}
