// Deployment costs (Section 8.2): chargers are transported from a depot;
// each deployed charger costs f_d(travel) + f_θ(rotation) + f_P(working
// power). Sweep the budget B and print the utility/cost frontier of the
// cost-benefit greedy.
//
//   ./budgeted_deployment [--seed N]
#include <iostream>

#include "src/hipo.hpp"

int main(int argc, char** argv) {
  using namespace hipo;
  Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_or("seed", 11));
  cli.finish();

  model::GenOptions gen;
  gen.device_multiplier = 2;
  gen.charger_multiplier = 2;
  Rng rng(seed);
  const auto scenario = model::make_paper_scenario(gen, rng);
  const auto extraction = pdcs::extract_all(scenario);

  ext::DeploymentCostModel cost;
  cost.depot = {0.0, 0.0};  // loading dock at the corner
  cost.c_dist = 1.0;        // cost per meter of travel
  cost.c_rot = 0.2;         // cost per radian of rotation
  cost.c_power = 2.0;       // cost per watt of working power
  cost.type_power = {1.0, 2.0, 3.0};

  // Reference: unconstrained greedy (same candidates).
  const auto unconstrained =
      opt::select_strategies(scenario, extraction.candidates,
                             opt::GreedyMode::kLazyGlobal);
  const double full_cost = cost.cost(unconstrained.placement);

  std::cout << "Unconstrained placement: utility "
            << format_double(unconstrained.exact_utility, 4) << " at cost "
            << format_double(full_cost, 1) << "\n\n";

  Table frontier({"budget", "spent", "chargers placed", "utility",
                  "utility/unconstrained"});
  for (double fraction : {0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 1.5}) {
    const double budget = fraction * full_cost;
    const auto result =
        ext::select_budgeted(scenario, extraction.candidates, cost, budget);
    frontier.row()
        .add(budget, 1)
        .add(result.spent, 1)
        .add(result.placement.size())
        .add(result.utility, 4)
        .add(unconstrained.exact_utility > 0.0
                 ? result.utility / unconstrained.exact_utility
                 : 0.0,
             3);
  }
  frontier.print(std::cout);
  std::cout << "\n(cost-benefit greedy with the best-affordable-singleton "
               "guard, after [46] as the paper suggests)\n";

  // Section 8.2 also formalizes the transport part as a TSP (one base
  // station) / m-TSP (m base stations): plan the actual deployment routes
  // for the unconstrained placement.
  const auto route = ext::plan_deployment_route(cost.depot,
                                                unconstrained.placement);
  std::cout << "\nDeployment route from the depot (TSP, 2-opt): "
            << format_double(route.length, 1) << " m for "
            << unconstrained.placement.size() << " chargers\n";
  std::vector<geom::Vec2> stops;
  for (const auto& s : unconstrained.placement) stops.push_back(s.pos);
  const auto fleet = ext::plan_multi_tour({{0.0, 0.0}, {40.0, 40.0}}, stops);
  std::cout << "Two-depot m-TSP: total " << format_double(fleet.total_length, 1)
            << " m, bottleneck " << format_double(fleet.max_length, 1)
            << " m\n";
  return 0;
}
