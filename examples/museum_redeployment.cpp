// Museum redeployment (Section 8.1): a gallery's exhibit sensors move when
// the exhibition is rearranged. Solve HIPO for the old and the new
// topologies, then compute charger transfer plans that minimize (a) the
// total switching overhead (Hungarian per type) and (b) the maximum
// per-charger overhead (binary search + Hall feasibility, then Hungarian).
//
//   ./museum_redeployment [--seed N]
#include <iostream>

#include "src/hipo.hpp"

namespace {

hipo::model::Scenario make_gallery(std::uint64_t seed, bool rearranged) {
  using namespace hipo;
  model::Scenario::Config cfg;
  cfg.charger_types = {{geom::kPi / 3.0, 1.5, 8.0},
                       {geom::kPi / 2.0, 1.0, 5.0}};
  cfg.device_types = {{geom::kPi}};
  cfg.pair_params = {{120.0, 48.0}, {100.0, 40.0}};
  cfg.charger_counts = {3, 3};
  cfg.region.lo = {0.0, 0.0};
  cfg.region.hi = {30.0, 20.0};
  // Two display walls.
  cfg.obstacles = {geom::make_rect({10.0, 5.0}, {11.0, 15.0}),
                   geom::make_rect({19.0, 5.0}, {20.0, 15.0})};
  Rng rng(seed);
  for (int i = 0; i < 12; ++i) {
    model::Device d;
    // Rearranged exhibition shifts the sensors to the other halves of the
    // three rooms.
    const double room = static_cast<double>(i % 3) * 9.0 + 1.5;
    const double x_off = rearranged ? 5.5 : 1.0;
    d.pos = {room + x_off + rng.uniform(0.0, 2.5),
             2.0 + rng.uniform(0.0, 16.0)};
    d.orientation = rng.angle();
    d.type = 0;
    d.p_th = 0.05;
    cfg.devices.push_back(d);
  }
  return model::Scenario(std::move(cfg));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hipo;
  Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_or("seed", 5));
  cli.finish();

  const auto before = make_gallery(seed, false);
  const auto after = make_gallery(seed + 1, true);

  const auto plan_before = core::solve(before);
  const auto plan_after = core::solve(after);
  std::cout << "Old exhibition utility: "
            << format_double(plan_before.utility, 4) << "\n";
  std::cout << "New exhibition utility: "
            << format_double(plan_after.utility, 4) << "\n\n";

  ext::SwitchCostModel cost;
  cost.w_move = 1.0;    // meters
  cost.w_rotate = 0.5;  // radians

  const auto min_total = ext::redeploy_min_total(
      plan_before.placement, plan_after.placement,
      before.num_charger_types(), cost);
  const auto min_max = ext::redeploy_min_max(
      plan_before.placement, plan_after.placement,
      before.num_charger_types(), cost);

  Table comparison({"objective", "total overhead", "max overhead"});
  comparison.row()
      .add("minimize total (Sec. 8.1.1)")
      .add(min_total.total_cost, 3)
      .add(min_total.max_cost, 3);
  comparison.row()
      .add("minimize max (Sec. 8.1.2)")
      .add(min_max.total_cost, 3)
      .add(min_max.max_cost, 3);
  comparison.print(std::cout);

  std::cout << "\nMin-max transfer plan:\n";
  Table plan({"charger", "from (x,y)", "to (x,y)", "cost"});
  for (std::size_t i = 0; i < plan_before.placement.size(); ++i) {
    const auto& from = plan_before.placement[i];
    const auto& to = plan_after.placement[min_max.to_of[i]];
    plan.row()
        .add(std::to_string(i + 1))
        .add("(" + format_double(from.pos.x, 1) + ", " +
             format_double(from.pos.y, 1) + ")")
        .add("(" + format_double(to.pos.x, 1) + ", " +
             format_double(to.pos.y, 1) + ")")
        .add(cost.cost(from, to), 3);
  }
  plan.print(std::cout);
  return 0;
}
