// Quickstart: build a small HIPO instance by hand, run the full pipeline
// (area discretization → PDCS extraction → submodular greedy), and inspect
// the result.
//
//   ./quickstart
#include <iostream>

#include "src/hipo.hpp"

int main() {
  using namespace hipo;

  // --- 1. Describe the hardware -----------------------------------------
  model::Scenario::Config cfg;
  // One charger type: 90° sector ring charging area between 1 m and 5 m.
  cfg.charger_types = {{geom::kPi / 2.0, 1.0, 5.0}};
  // Two device types: a narrow 120° receiver and an omnidirectional one.
  cfg.device_types = {{2.0 * geom::kPi / 3.0}, {geom::kTwoPi}};
  // Empirical power constants P = a/(d+b)² per (charger, device) pair.
  cfg.pair_params = {{100.0, 40.0}, {130.0, 52.0}};
  // Deploy three chargers of the single type.
  cfg.charger_counts = {3};

  // --- 2. Describe the field --------------------------------------------
  cfg.region.lo = {0.0, 0.0};
  cfg.region.hi = {20.0, 20.0};
  // One rectangular obstacle blocking the middle of the room.
  cfg.obstacles = {geom::make_rect({9.0, 8.0}, {11.0, 12.0})};
  // Five devices with fixed positions/orientations and P_th = 0.05.
  const auto dev = [](double x, double y, double deg, std::size_t type) {
    model::Device d;
    d.pos = {x, y};
    d.orientation = deg * geom::kPi / 180.0;
    d.type = type;
    d.p_th = 0.05;
    return d;
  };
  cfg.devices = {dev(5, 10, 0, 0), dev(15, 10, 180, 0), dev(10, 5, 90, 1),
                 dev(10, 15, 270, 1), dev(4, 4, 45, 1)};

  const model::Scenario scenario(std::move(cfg));

  // --- 3. Solve ----------------------------------------------------------
  const auto result = core::solve(scenario);

  std::cout << "HIPO quickstart\n";
  std::cout << "  candidates extracted: "
            << result.extraction.candidates.size() << " (from "
            << result.extraction.raw_candidates << " raw)\n";
  std::cout << "  charging utility:     " << format_double(result.utility, 4)
            << " (approx objective " << format_double(result.approx_utility, 4)
            << ")\n\n";

  Table placement({"charger", "x", "y", "orientation(deg)"});
  for (std::size_t i = 0; i < result.placement.size(); ++i) {
    const auto& s = result.placement[i];
    placement.row()
        .add(std::to_string(i + 1))
        .add(s.pos.x, 2)
        .add(s.pos.y, 2)
        .add(s.orientation * 180.0 / geom::kPi, 1);
  }
  placement.print(std::cout);

  std::cout << '\n';
  Table per_device({"device", "power", "utility"});
  const auto powers = scenario.per_device_power(result.placement);
  const auto utilities = scenario.per_device_utility(result.placement);
  for (std::size_t j = 0; j < scenario.num_devices(); ++j) {
    per_device.row()
        .add(std::to_string(j + 1))
        .add(powers[j], 4)
        .add(utilities[j], 3);
  }
  per_device.print(std::cout);
  return 0;
}
