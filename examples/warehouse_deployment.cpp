// Warehouse deployment: the motivating scenario of the paper's introduction
// — rechargeable sensors spread across a warehouse whose shelving racks
// block line-of-sight power. Builds a 40 m × 25 m hall with four rack rows,
// sensors along the aisles, solves HIPO, and compares against the strongest
// baseline (GPPDCS Triangle).
//
//   ./warehouse_deployment [--seed N] [--csv]
#include <iostream>

#include "src/hipo.hpp"

int main(int argc, char** argv) {
  using namespace hipo;
  Cli cli(argc, argv);
  const int seed = cli.get_or("seed", 7);
  const bool csv = cli.has("csv");
  cli.finish();

  model::Scenario::Config cfg;
  // Forklift-mounted mid-range chargers and wall-mount wide-angle ones.
  cfg.charger_types = {
      {geom::kPi / 3.0, 2.0, 9.0},   // narrow long-range
      {geom::kPi / 2.0, 1.0, 6.0},   // wide short-range
  };
  cfg.device_types = {{2.0 * geom::kPi / 3.0}, {geom::kPi}};
  cfg.pair_params = {{120.0, 48.0}, {150.0, 60.0},
                     {110.0, 44.0}, {140.0, 56.0}};
  cfg.charger_counts = {4, 6};
  cfg.region.lo = {0.0, 0.0};
  cfg.region.hi = {40.0, 25.0};

  // Four rack rows with aisles between them.
  for (int row = 0; row < 4; ++row) {
    const double y0 = 4.0 + 5.0 * row;
    cfg.obstacles.push_back(geom::make_rect({6.0, y0}, {34.0, y0 + 1.5}));
  }

  // Sensors along the aisles (inventory trackers) plus dock sensors.
  Rng rng(static_cast<std::uint64_t>(seed));
  const auto add_device = [&](double x, double y, std::size_t type) {
    model::Device d;
    d.pos = {x, y};
    d.orientation = rng.angle();
    d.type = type;
    d.p_th = 0.05;
    cfg.devices.push_back(d);
  };
  for (int aisle = 0; aisle <= 4; ++aisle) {
    const double y = 2.75 + 5.0 * aisle;  // aisle centerlines
    for (double x = 8.0; x <= 32.0; x += 6.0) {
      add_device(x + rng.uniform(-1.0, 1.0), y + rng.uniform(-0.5, 0.5),
                 aisle % 2 == 0 ? 0 : 1);
    }
  }
  for (double x : {2.0, 38.0}) {  // dock door sensors
    add_device(x, 12.5 + rng.uniform(-4.0, 4.0), 1);
  }

  const model::Scenario scenario(std::move(cfg));
  std::cout << "Warehouse: " << scenario.num_devices() << " sensors, "
            << scenario.num_chargers() << " chargers, "
            << scenario.num_obstacles() << " rack rows\n\n";

  const auto hipo_result = core::solve(scenario);
  Rng base_rng(static_cast<std::uint64_t>(seed) + 1);
  const auto baseline = baselines::place_gppdcs(
      scenario, baselines::GridKind::kTriangle, base_rng);

  Table summary({"algorithm", "utility", "min device utility",
                 "uncharged devices"});
  const auto report = [&](const std::string& name,
                          const model::Placement& placement) {
    const auto utilities = scenario.per_device_utility(placement);
    double lo = 1.0;
    int zero = 0;
    for (double u : utilities) {
      lo = std::min(lo, u);
      zero += u <= 0.0 ? 1 : 0;
    }
    summary.row()
        .add(name)
        .add(scenario.placement_utility(placement), 4)
        .add(lo, 3)
        .add(zero);
  };
  report("HIPO", hipo_result.placement);
  report("GPPDCS Triangle", baseline);
  summary.print(std::cout);

  std::cout << "\nHIPO charger placement:\n";
  Table placement({"charger", "type", "x", "y", "orientation(deg)"});
  for (std::size_t i = 0; i < hipo_result.placement.size(); ++i) {
    const auto& s = hipo_result.placement[i];
    placement.row()
        .add(std::to_string(i + 1))
        .add(s.type + 1)
        .add(s.pos.x, 2)
        .add(s.pos.y, 2)
        .add(s.orientation * 180.0 / geom::kPi, 1);
  }
  placement.print(std::cout);

  if (csv) {
    placement.write_csv_file("warehouse_placement.csv");
    std::cout << "\nplacement written to warehouse_placement.csv\n";
  }

  // Visual artifacts: an SVG of the solution and a coverage heatmap.
  viz::write_svg_file("warehouse.svg", scenario, hipo_result.placement);
  const auto field = viz::sample_power_field(
      scenario, hipo_result.placement, /*probe_type=*/1, 160, 100);
  viz::write_field_pgm("warehouse_power.pgm", field);
  std::cout << "\nwrote warehouse.svg and warehouse_power.pgm\n";
  return 0;
}
