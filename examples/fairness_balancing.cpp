// Charging-utility balancing (Section 8.3): compare four objectives on the
// same topology —
//   * mean-utility greedy (the P3 objective),
//   * proportional fairness (greedy on Σ log(U_j + 1), ½−ε),
//   * max-min via simulated annealing over PDCS candidates,
//   * max-min via particle swarm over continuous strategies.
//
//   ./fairness_balancing [--seed N] [--sa-iters N] [--pso-iters N]
#include <algorithm>
#include <iostream>

#include "src/hipo.hpp"

int main(int argc, char** argv) {
  using namespace hipo;
  Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_or("seed", 3));
  const int sa_iters = cli.get_or("sa-iters", 4000);
  const int pso_iters = cli.get_or("pso-iters", 80);
  cli.finish();

  // Obstacle-free topology with a generous charger budget so every device
  // is coverable and the max-min objective is non-degenerate.
  model::GenOptions gen;
  gen.device_multiplier = 1;
  gen.charger_multiplier = 2;
  gen.num_obstacles = 0;
  Rng topo_rng(seed);
  const auto scenario = model::make_paper_scenario(gen, topo_rng);
  std::cout << "Scenario: " << scenario.num_devices() << " devices, "
            << scenario.num_chargers() << " chargers\n\n";

  const auto extraction = pdcs::extract_all(scenario);

  struct Entry {
    std::string name;
    model::Placement placement;
  };
  std::vector<Entry> entries;

  const auto greedy = opt::select_strategies(
      scenario, extraction.candidates, opt::GreedyMode::kLazyGlobal);
  entries.push_back({"mean-utility greedy", greedy.placement});
  entries.push_back(
      {"proportional fairness",
       ext::proportional_fairness_select(scenario, extraction.candidates,
                                         opt::GreedyMode::kLazyGlobal)
           .placement});
  {
    Rng rng(seed + 1);
    ext::AnnealOptions sa;
    sa.iterations = sa_iters;
    entries.push_back(
        {"max-min (simulated annealing)",
         ext::maxmin_simulated_annealing(scenario, extraction.candidates,
                                         rng, sa)
             .placement});
  }
  {
    Rng rng(seed + 2);
    ext::PsoOptions pso;
    pso.iterations = pso_iters;
    pso.warm_start = &greedy.placement;  // refine the greedy solution
    entries.push_back(
        {"max-min (particle swarm)",
         ext::maxmin_particle_swarm(scenario, rng, pso).placement});
  }

  Table summary({"objective", "mean utility", "min utility", "p10 utility",
                 "saturated devices"});
  for (const auto& e : entries) {
    const auto utilities = scenario.per_device_utility(e.placement);
    int saturated = 0;
    for (double u : utilities) saturated += u >= 1.0 - 1e-9 ? 1 : 0;
    summary.row()
        .add(e.name)
        .add(scenario.placement_utility(e.placement), 4)
        .add(*std::min_element(utilities.begin(), utilities.end()), 4)
        .add(percentile(utilities, 10.0), 4)
        .add(saturated);
  }
  summary.print(std::cout);
  std::cout << "\n(the fairness objectives trade mean utility for a higher "
               "floor; proportional fairness keeps the ½−ε guarantee)\n";
  return 0;
}
